//! Plan normalization + structural fingerprinting.
//!
//! A serving engine (the SPADE follow-up to the paper) receives the
//! *same* plans over and over: every pan/zoom step re-submits the
//! selection/heatmap plan with a new viewport, and concurrent users
//! often submit structurally identical subplans. To deduplicate
//! in-flight work and key a result cache, plans need a stable identity
//! that survives syntactic differences — which is exactly what the
//! rewrite rules already provide: [`normalize`] runs
//! [`rewrite::optimize`](super::rewrite::optimize) (associative-blend
//! flattening + polygon-leaf fusion) so equivalent formulations
//! converge on one shape, and [`fingerprint`] hashes that shape into a
//! 128-bit [`Fingerprint`].
//!
//! ## Identity contract
//!
//! The fingerprint is **structural**, with two deliberate choices about
//! leaf identity:
//!
//! * **Datasets by handle** — a [`PointBatch`](crate::canvas::PointBatch)
//!   or literal canvas is identified by its shared `Arc` pointer (plus
//!   length). Resident datasets are submitted through the same handle,
//!   and content-hashing millions of points per query would cost a
//!   noticeable slice of the query itself.
//! * **Query geometry by value** — polygons (constraint/query leaves
//!   and polygon tables) hash their exact vertex coordinates, so a
//!   client that rebuilds the same query polygon each frame still hits
//!   the cache.
//!
//! Functions are identified **by name**: `V[f]` nodes hash their
//! `name`, `D*[γ]` nodes their `γ.name`, and closure-backed mask specs
//! their label (`MaskSpec::Texel`). Two semantically different
//! functions registered under one name will collide — the same
//! contract plan diagrams already rely on, now load-bearing: name your
//! functions uniquely. Closure-backed `PositionMap::Custom` transforms
//! have no name and fall back to closure identity (`Arc` pointer), so
//! they never falsely collide but also never deduplicate.
//!
//! Fingerprints are deterministic within a process run (and across
//! runs for plans without by-handle leaves); they are *not* a
//! cryptographic commitment.

use std::sync::Arc;

use super::expr::{Expr, SourceSpec};
use crate::info::BlendFn;
use crate::ops::{CountCond, MaskSpec, PositionMap};
use canvas_geom::polygon::Polygon;

/// A 128-bit structural plan identity (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fp:{:032x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Two independent 64-bit SplitMix-fed accumulation lanes; collisions
/// require defeating both. Dependency-free and stable across builds.
struct Mix {
    a: u64,
    b: u64,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Mix {
    fn new() -> Self {
        // First words of π and e: nothing-up-my-sleeve seeds.
        Mix {
            a: 0x243F_6A88_85A3_08D3,
            b: 0xB7E1_5162_8AED_2A6A,
        }
    }

    fn word(&mut self, w: u64) {
        self.a = splitmix(self.a ^ w);
        self.b = splitmix(self.b.rotate_left(23) ^ w.wrapping_mul(0xFF51_AFD7_ED55_8CCD));
    }

    /// Structure tag — keeps `[x, y]` and `[xy]` distinct.
    fn tag(&mut self, t: u8) {
        self.word(0xA0 + t as u64);
    }

    fn float(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
    }

    fn ptr<T: ?Sized>(&mut self, p: *const T) {
        self.word(p as *const () as usize as u64);
    }

    fn finish(&self) -> Fingerprint {
        Fingerprint(((splitmix(self.a) as u128) << 64) | splitmix(self.b) as u128)
    }
}

/// Incremental fingerprint construction for identities that are *not*
/// `Expr` plans (e.g. the engine's fused-chain query descriptors),
/// under the same contract: datasets by [`handle`](Self::handle),
/// geometry by [`polygon`](Self::polygon) value, functions by
/// [`text`](Self::text) name. The `domain` string namespaces the
/// identity so different descriptor kinds can never collide with each
/// other or with plan fingerprints.
pub struct FingerprintBuilder {
    mix: Mix,
}

impl FingerprintBuilder {
    pub fn new(domain: &str) -> Self {
        let mut mix = Mix::new();
        mix.tag(99);
        mix.str(domain);
        FingerprintBuilder { mix }
    }

    pub fn word(&mut self, w: u64) -> &mut Self {
        self.mix.word(w);
        self
    }

    pub fn text(&mut self, s: &str) -> &mut Self {
        self.mix.str(s);
        self
    }

    /// Folds in a scalar parameter by exact bit value.
    pub fn float(&mut self, x: f64) -> &mut Self {
        self.mix.float(x);
        self
    }

    /// Folds in a shared dataset handle (pointer identity + length).
    pub fn handle<T>(&mut self, data: &Arc<T>, len: usize) -> &mut Self {
        self.mix.ptr(Arc::as_ptr(data));
        self.mix.word(len as u64);
        self
    }

    /// Folds in a polygon by exact vertex value.
    pub fn polygon(&mut self, p: &Polygon) -> &mut Self {
        polygon_content(p, &mut self.mix);
        self
    }

    /// Folds in a whole plan (the structural hash of the given form —
    /// normalize first for syntax-insensitive identity).
    pub fn plan(&mut self, e: &Expr) -> &mut Self {
        walk(e, &mut self.mix);
        self
    }

    pub fn finish(&self) -> Fingerprint {
        self.mix.finish()
    }
}

/// Normalizes a plan to its canonical rewritten form — the shape
/// [`fingerprint`] hashes and the engine executes (deduplicated work
/// must run the deduplicated plan).
pub fn normalize(e: Expr) -> Expr {
    super::rewrite::optimize(e)
}

/// Structural fingerprint of a plan **as given** (callers wanting
/// syntax-insensitive identity normalize first; see
/// [`Expr::fingerprint`]).
pub fn fingerprint(e: &Expr) -> Fingerprint {
    let mut mix = Mix::new();
    walk(e, &mut mix);
    mix.finish()
}

fn polygon_content(p: &Polygon, mix: &mut Mix) {
    mix.tag(20);
    mix.word(p.holes().len() as u64 + 1);
    for ring in std::iter::once(p.outer()).chain(p.holes()) {
        mix.word(ring.vertices().len() as u64);
        for v in ring.vertices() {
            mix.float(v.x);
            mix.float(v.y);
        }
    }
}

fn blend_tag(op: BlendFn, mix: &mut Mix) {
    mix.word(match op {
        BlendFn::Over => 1,
        BlendFn::PointOverArea => 2,
        BlendFn::AreaCount => 3,
        BlendFn::Accumulate => 4,
        BlendFn::PointAccumulate => 5,
    });
}

fn count_cond(c: &CountCond, mix: &mut Mix) {
    match c {
        CountCond::Eq(k) => {
            mix.tag(30);
            mix.word(*k as u64);
        }
        CountCond::Ge(k) => {
            mix.tag(31);
            mix.word(*k as u64);
        }
    }
}

fn source(s: &SourceSpec, mix: &mut Mix) {
    match s {
        SourceSpec::Points(batch) => {
            mix.tag(1);
            mix.ptr(Arc::as_ptr(batch));
            mix.word(batch.len() as u64);
        }
        SourceSpec::Polygon { table, record, id } => {
            mix.tag(2);
            polygon_content(&table[*record], mix);
            mix.word(*id as u64);
        }
        SourceSpec::PolygonSet { table, blend } => {
            mix.tag(3);
            mix.word(table.len() as u64);
            for p in table.iter() {
                polygon_content(p, mix);
            }
            blend_tag(*blend, mix);
        }
        SourceSpec::Circle { center, radius, id } => {
            mix.tag(4);
            mix.float(center.x);
            mix.float(center.y);
            mix.float(*radius);
            mix.word(*id as u64);
        }
        SourceSpec::Rect { l1, l2, id } => {
            mix.tag(5);
            mix.float(l1.x);
            mix.float(l1.y);
            mix.float(l2.x);
            mix.float(l2.y);
            mix.word(*id as u64);
        }
        SourceSpec::HalfSpace { a, b, c, id } => {
            mix.tag(6);
            mix.float(*a);
            mix.float(*b);
            mix.float(*c);
            mix.word(*id as u64);
        }
        SourceSpec::Literal(c) => {
            mix.tag(7);
            mix.ptr(Arc::as_ptr(c));
        }
    }
}

fn walk(e: &Expr, mix: &mut Mix) {
    match e {
        Expr::Source(s) => {
            mix.tag(10);
            source(s, mix);
        }
        Expr::Blend { op, left, right } => {
            mix.tag(11);
            blend_tag(*op, mix);
            walk(left, mix);
            walk(right, mix);
        }
        Expr::MultiBlend { op, inputs } => {
            mix.tag(12);
            blend_tag(*op, mix);
            mix.word(inputs.len() as u64);
            for i in inputs {
                walk(i, mix);
            }
        }
        Expr::Mask { spec, input } => {
            mix.tag(13);
            match spec {
                MaskSpec::PointInAreas(c) => {
                    mix.tag(40);
                    count_cond(c, mix);
                }
                MaskSpec::AreaCount(c) => {
                    mix.tag(41);
                    count_cond(c, mix);
                }
                MaskSpec::Texel(label, _) => {
                    mix.tag(42);
                    mix.str(label);
                }
            }
            walk(input, mix);
        }
        Expr::GeomTransform { gamma, input } => {
            mix.tag(14);
            match gamma {
                PositionMap::Translate(d) => {
                    mix.tag(50);
                    mix.float(d.x);
                    mix.float(d.y);
                }
                PositionMap::RotateAround { center, angle } => {
                    mix.tag(51);
                    mix.float(center.x);
                    mix.float(center.y);
                    mix.float(*angle);
                }
                PositionMap::ScaleAround { center, factor } => {
                    mix.tag(52);
                    mix.float(center.x);
                    mix.float(center.y);
                    mix.float(*factor);
                }
                PositionMap::Custom(f) => {
                    mix.tag(53);
                    mix.ptr(Arc::as_ptr(f));
                }
            }
            walk(input, mix);
        }
        Expr::MapScatter {
            gamma,
            groups,
            combine,
            input,
        } => {
            mix.tag(15);
            mix.str(gamma.name);
            mix.word(*groups as u64);
            blend_tag(*combine, mix);
            walk(input, mix);
        }
        Expr::ValueTransform { name, input, .. } => {
            mix.tag(16);
            mix.str(name);
            walk(input, mix);
        }
    }
}

impl Expr {
    /// Syntax-insensitive plan identity: the fingerprint of the
    /// [`normalize`]d form (the plan is cloned for normalization; the
    /// receiver is untouched). Equal fingerprints ⇒ the engine may
    /// serve one plan's result for the other (see the module-level
    /// identity contract).
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint(&normalize(self.clone()))
    }
}

// ---------------------------------------------------------------------
// Per-node fingerprints and cut-point selection (subplan sharing).
// ---------------------------------------------------------------------

/// One canvas-producing subexpression of a plan, as enumerated by
/// [`subplans`]. The algebra is closed — *every* node evaluates to a
/// canvas — so every node is a candidate; `is_cut` marks the ones
/// worth sharing across queries.
#[derive(Clone, Copy, Debug)]
pub struct Subplan {
    /// Structural fingerprint of the subtree **as given** (fingerprint
    /// the normalized plan to get cache-consistent identities; the
    /// root entry then equals the whole-plan [`fingerprint`]).
    pub fingerprint: Fingerprint,
    /// The subtree's [`Expr::cost`] heuristic — what a cache hit saves.
    pub cost: f64,
    /// Distance from the plan root (0 = the root itself).
    pub depth: usize,
    /// Whether this node is a sharing cut point (see [`is_cut_point`]).
    pub is_cut: bool,
}

/// Whether a node's rendered canvas is worth publishing for
/// cross-query sharing. Every node qualifies except
/// [`SourceSpec::Literal`]: a literal is *already* a materialized
/// canvas the client holds, so "rendering" it is a clone — publishing
/// would spend cache bytes to save nothing. Cheap utility sources
/// (`Circ`/`Rect`/`HS`) still cost a full raster pass and are kept.
///
/// Cut points never break fused chains: the fused runners consult the
/// exchange only for operand canvases they materialize anyway (see
/// `ops::chain`), so the streamed≡materialized bit-identity contract
/// of PR 3 is untouched.
pub fn is_cut_point(e: &Expr) -> bool {
    !matches!(e, Expr::Source(SourceSpec::Literal(_)))
}

/// Enumerates every subexpression of `e` bottom-up (post-order, so
/// children precede parents and the root is last), with its structural
/// fingerprint, cost, depth, and cut-point flag. This is the
/// *planning* view of subplan sharing — evaluation consults the same
/// identities on the fly via
/// [`Expr::eval_via`](super::Expr::eval_via).
pub fn subplans(e: &Expr) -> Vec<Subplan> {
    fn walk_subplans(e: &Expr, depth: usize, out: &mut Vec<Subplan>) {
        match e {
            Expr::Source(_) => {}
            Expr::Blend { left, right, .. } => {
                walk_subplans(left, depth + 1, out);
                walk_subplans(right, depth + 1, out);
            }
            Expr::MultiBlend { inputs, .. } => {
                for i in inputs {
                    walk_subplans(i, depth + 1, out);
                }
            }
            Expr::Mask { input, .. }
            | Expr::GeomTransform { input, .. }
            | Expr::MapScatter { input, .. }
            | Expr::ValueTransform { input, .. } => walk_subplans(input, depth + 1, out),
        }
        out.push(Subplan {
            fingerprint: fingerprint(e),
            cost: e.cost(),
            depth,
            is_cut: is_cut_point(e),
        });
    }
    let mut out = Vec::new();
    walk_subplans(e, 0, &mut out);
    out
}

/// One row of the *report* view of a plan: the pre-order node id the
/// evaluator stamps onto spans, joined to the node's operator label
/// and structural fingerprint. [`plan_nodes`] of the normalized plan
/// is the EXPLAIN skeleton an `ExecReport` measures into.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// Pre-order id (0 = root); equals the `node` argument on the
    /// evaluator's spans for the same plan.
    pub id: u64,
    /// Distance from the plan root.
    pub depth: usize,
    /// Operator label in plan-diagram notation
    /// ([`Expr::node_label`]).
    pub label: String,
    /// Structural fingerprint of this node's subtree. The root entry
    /// equals the whole-plan [`fingerprint`].
    pub fingerprint: Fingerprint,
}

/// Enumerates every node of `e` in pre-order (root first — ids match
/// the evaluator's span stamping by construction: both assign the
/// first child `id + 1` and advance by each sibling's
/// [`Expr::node_count`]).
pub fn plan_nodes(e: &Expr) -> Vec<PlanNode> {
    fn walk_nodes(e: &Expr, depth: usize, next: &mut u64, out: &mut Vec<PlanNode>) {
        let id = *next;
        *next += 1;
        out.push(PlanNode {
            id,
            depth,
            label: e.node_label(),
            fingerprint: fingerprint(e),
        });
        match e {
            Expr::Source(_) => {}
            Expr::Blend { left, right, .. } => {
                walk_nodes(left, depth + 1, next, out);
                walk_nodes(right, depth + 1, next, out);
            }
            Expr::MultiBlend { inputs, .. } => {
                for i in inputs {
                    walk_nodes(i, depth + 1, next, out);
                }
            }
            Expr::Mask { input, .. }
            | Expr::GeomTransform { input, .. }
            | Expr::MapScatter { input, .. }
            | Expr::ValueTransform { input, .. } => walk_nodes(input, depth + 1, next, out),
        }
    }
    let mut out = Vec::new();
    walk_nodes(e, 0, &mut 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::{AreaSource, PointBatch};
    use canvas_geom::Point;

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn identical_plans_share_fingerprints_rebuilt_polygons_too() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let plan = |q: Polygon| {
            Expr::mask(
                MaskSpec::PointInAreas(CountCond::Ge(1)),
                Expr::blend(
                    BlendFn::PointOverArea,
                    Expr::points(data.clone()),
                    Expr::query_polygon(q, 1),
                ),
            )
        };
        // The polygon is rebuilt (fresh Arc table) — value identity
        // must still hold.
        assert_eq!(
            plan(square(0.0, 0.0, 5.0)).fingerprint(),
            plan(square(0.0, 0.0, 5.0)).fingerprint()
        );
        assert_ne!(
            plan(square(0.0, 0.0, 5.0)).fingerprint(),
            plan(square(0.0, 0.0, 6.0)).fingerprint()
        );
    }

    #[test]
    fn plan_nodes_preorder_ids_join_the_evaluators_arithmetic() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let plan = Expr::mask(
            MaskSpec::PointInAreas(CountCond::Ge(1)),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data),
                Expr::query_polygon(square(0.0, 0.0, 5.0), 1),
            ),
        );
        let nodes = plan_nodes(&plan);
        assert_eq!(nodes.len() as u64, plan.node_count());
        // Pre-order: ids are dense 0..n and the root comes first with
        // the whole-plan fingerprint.
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id, i as u64);
        }
        assert_eq!(nodes[0].depth, 0);
        assert_eq!(nodes[0].fingerprint, fingerprint(&plan));
        assert!(nodes[0].label.starts_with("Mp'"));
        // The blend's second child (C_Y) sits at first-child id +
        // first-child subtree size — the same arithmetic eval_node
        // stamps spans with.
        let Expr::Mask { input: blend, .. } = &plan else {
            unreachable!()
        };
        let Expr::Blend { left, .. } = &**blend else {
            unreachable!()
        };
        assert_eq!(nodes[2].label, left.node_label());
        assert_eq!(
            nodes[(2 + left.node_count()) as usize].label,
            "C_Y[record 0, id 1]"
        );
        // Depths follow the tree shape.
        assert_eq!(nodes[1].depth, 1);
        assert_eq!(nodes[2].depth, 2);
    }

    #[test]
    fn datasets_identified_by_handle() {
        let a = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let b = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        assert_eq!(
            Expr::points(a.clone()).fingerprint(),
            Expr::points(a.clone()).fingerprint()
        );
        // Equal contents, different handle: distinct by design.
        assert_ne!(Expr::points(a).fingerprint(), Expr::points(b).fingerprint());
    }

    #[test]
    fn normalization_converges_equivalent_formulations() {
        let table: AreaSource = Arc::new(vec![square(1.0, 1.0, 2.0), square(4.0, 4.0, 2.0)]);
        let nested = Expr::blend(
            BlendFn::AreaCount,
            Expr::polygon_record(table.clone(), 0, 0),
            Expr::polygon_record(table.clone(), 1, 1),
        );
        let flat = Expr::multi_blend(
            BlendFn::AreaCount,
            vec![
                Expr::polygon_record(table.clone(), 0, 0),
                Expr::polygon_record(table.clone(), 1, 1),
            ],
        );
        // Different syntax, same normalized shape (both fuse to one
        // PolygonSet draw), same fingerprint.
        assert_eq!(nested.fingerprint(), flat.fingerprint());
        // Unnormalized structural hashes differ, proving the rewrite is
        // what converges them.
        assert_ne!(fingerprint(&nested), fingerprint(&flat));
    }

    #[test]
    fn structure_and_parameters_separate_plans() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let base = Expr::points(data.clone());
        let masked = Expr::mask(MaskSpec::PointInAreas(CountCond::Ge(1)), base.clone());
        let masked_eq = Expr::mask(MaskSpec::PointInAreas(CountCond::Eq(1)), base.clone());
        let named = Expr::mask(MaskSpec::Texel("dense", Arc::new(|_| true)), base.clone());
        let named2 = Expr::mask(MaskSpec::Texel("dense", Arc::new(|_| true)), base.clone());
        let other_name = Expr::mask(MaskSpec::Texel("sparse", Arc::new(|_| true)), base.clone());
        assert_ne!(base.fingerprint(), masked.fingerprint());
        assert_ne!(masked.fingerprint(), masked_eq.fingerprint());
        // Closure-backed masks: identity is the label.
        assert_eq!(named.fingerprint(), named2.fingerprint());
        assert_ne!(named.fingerprint(), other_name.fingerprint());
        // Value transforms: identity is the name.
        let v1 = Expr::value_transform("log", Arc::new(|_, t| t), base.clone());
        let v2 = Expr::value_transform("log", Arc::new(|_, t| t), base.clone());
        let v3 = Expr::value_transform("sqrt", Arc::new(|_, t| t), base);
        assert_eq!(v1.fingerprint(), v2.fingerprint());
        assert_ne!(v1.fingerprint(), v3.fingerprint());
    }

    #[test]
    fn subplans_enumerate_bottom_up_with_root_last() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let blend = Expr::blend(
            BlendFn::PointOverArea,
            Expr::points(data.clone()),
            Expr::query_polygon(square(0.0, 0.0, 5.0), 1),
        );
        let plan = Expr::mask(MaskSpec::PointInAreas(CountCond::Ge(1)), blend.clone());
        let subs = subplans(&plan);
        // mask, blend, points, polygon — four canvas-producing nodes.
        assert_eq!(subs.len(), 4);
        // Post-order: the root is last, at depth 0, and its fingerprint
        // IS the whole-plan structural fingerprint.
        let root = subs.last().unwrap();
        assert_eq!(root.depth, 0);
        assert_eq!(root.fingerprint, fingerprint(&plan));
        // The blend subtree appears with its own structural identity.
        assert!(subs
            .iter()
            .any(|s| s.fingerprint == fingerprint(&blend) && s.depth == 1));
        // Children precede parents.
        let pos = |fp: Fingerprint| subs.iter().position(|s| s.fingerprint == fp).unwrap();
        assert!(pos(fingerprint(&blend)) < pos(fingerprint(&plan)));
    }

    #[test]
    fn selection_and_heatmap_share_the_blend_subplan() {
        // The motivating case: a selection and a (coarse) heatmap over
        // the same data + query polygon share the blended density
        // subplan — identical per-node fingerprints.
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let blend = || {
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data.clone()),
                Expr::query_polygon(square(0.0, 0.0, 5.0), 1),
            )
        };
        let selection = Expr::mask(MaskSpec::PointInAreas(CountCond::Ge(1)), blend());
        let heat = Expr::value_transform(
            "log",
            Arc::new(|_, t| t),
            Expr::mask(MaskSpec::Texel("pa", Arc::new(|_| true)), blend()),
        );
        let shared = fingerprint(&blend());
        assert_ne!(fingerprint(&selection), fingerprint(&heat));
        let in_sel = subplans(&selection)
            .iter()
            .any(|s| s.fingerprint == shared && s.is_cut);
        let in_heat = subplans(&heat)
            .iter()
            .any(|s| s.fingerprint == shared && s.is_cut);
        assert!(in_sel && in_heat, "shared blend is a cut point in both");
    }

    #[test]
    fn literal_sources_are_not_cut_points() {
        let lit = Expr::literal(crate::canvas::Canvas::empty(canvas_raster::Viewport::new(
            canvas_geom::BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            2,
            2,
        )));
        assert!(!is_cut_point(&lit));
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        assert!(is_cut_point(&Expr::points(data.clone())));
        let masked = Expr::mask(MaskSpec::PointInAreas(CountCond::Ge(1)), lit);
        // The literal leaf is excluded, but the operator above it cuts.
        assert!(is_cut_point(&masked));
        let subs = subplans(&masked);
        assert_eq!(subs.len(), 2);
        assert!(!subs[0].is_cut && subs[1].is_cut);
    }

    #[test]
    fn fingerprint_is_stable_within_run() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(2.0, 3.0)]));
        let e = Expr::blend(
            BlendFn::PointOverArea,
            Expr::points(data),
            Expr::query_polygon(square(0.0, 0.0, 4.0), 7),
        );
        let fp = e.fingerprint();
        for _ in 0..5 {
            assert_eq!(e.fingerprint(), fp);
        }
    }
}
