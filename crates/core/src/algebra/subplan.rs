//! Cross-query subplan sharing — the algebra-side hook.
//!
//! The engine's whole-plan cache (PR 4) deduplicates *identical* plans;
//! the SPADE follow-up engine goes further and reuses rendered
//! **intermediates** across operators: a selection and a heatmap over
//! the same data + viewport both render the same density canvas `C_P`
//! and the same query-polygon canvas `C_Q`, and should compute each
//! once. This module defines the narrow interface evaluation uses to
//! make that possible without the algebra knowing anything about
//! caches, engines, or threads:
//!
//! * [`SubplanExchange`] — consulted at every *cut point* (a
//!   canvas-producing subexpression worth sharing, see
//!   [`is_cut_point`](super::fingerprint::is_cut_point)) with the
//!   subplan's structural [`Fingerprint`]. The exchange answers with a
//!   [`SubplanAccess`]:
//!   [`Ready`](SubplanAccess::Ready) (someone already rendered this —
//!   use the shared canvas), [`Lead`](SubplanAccess::Lead) (you render
//!   it, then [`publish`](SubplanLease::publish) so concurrent
//!   subscribers and the cache see it), or
//!   [`Compute`](SubplanAccess::Compute) (render privately).
//! * [`NullExchange`] — the inert implementation every non-engine call
//!   path uses; it reports [`active`](SubplanExchange::active)` ==
//!   false` so evaluation skips per-node fingerprinting entirely and
//!   [`Expr::eval`](super::Expr::eval) stays zero-overhead.
//!
//! ## Identity and bit-identity contract
//!
//! A subplan fingerprint follows the module contract of
//! [`fingerprint`](mod@super::fingerprint): structural hash of the subtree,
//! datasets by handle, geometry by value, functions by name. Rendering
//! is deterministic, so any canvas published under a fingerprint is
//! bit-identical to the canvas the subscriber would have rendered
//! itself — sharing is invisible in results, which is the same
//! contract the whole-plan cache already makes.
//!
//! ## Liveness
//!
//! An exchange implementation may *block* in
//! [`acquire`](SubplanExchange::acquire) (subscribing to another
//! query's in-flight render). Deadlock-freedom holds structurally:
//! a leader only acquires subplans strictly *contained* in the subplan
//! it is computing, so every wait chain descends a strictly shrinking
//! sequence of subtrees and must terminate. A leader that fails to
//! publish (panic, shed) must resolve its subscribers with a fallback
//! signal — they then return [`Compute`](SubplanAccess::Compute) and
//! render privately rather than hanging or erroring.

use std::sync::Arc;

use super::fingerprint::Fingerprint;
use crate::canvas::Canvas;
use canvas_raster::Viewport;

/// The obligation a leading evaluator holds for one subplan: render
/// the canvas, then [`publish`](Self::publish) it exactly once.
/// Implementations must treat being dropped **without** a publish
/// (leader panicked or bailed) as a failure signal to subscribers, so
/// they fall back to computing privately instead of waiting forever.
pub trait SubplanLease {
    /// Hands the rendered canvas to subscribers (and, typically, a
    /// cache). Called at most once.
    fn publish(&mut self, canvas: &Arc<Canvas>);
}

/// Where a [`Ready`](SubplanAccess::Ready) canvas came from — recorded
/// on the hit's span so execution reports can distinguish a subplan
/// cache hit from a subscription to another query's in-flight render.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubplanSource {
    /// Served from the shared subplan cache.
    Cache,
    /// Published by a concurrent leader this acquire subscribed to.
    Subscribed,
}

impl SubplanSource {
    /// The provenance string reports carry (`shared_cache` /
    /// `subscribed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SubplanSource::Cache => "shared_cache",
            SubplanSource::Subscribed => "subscribed",
        }
    }
}

/// The exchange's answer for one subplan (see module docs).
pub enum SubplanAccess<'a> {
    /// Render privately; nobody shares this subplan.
    Compute,
    /// Already rendered (cached, or a concurrent leader just
    /// published): use the shared canvas as-is.
    Ready(Arc<Canvas>, SubplanSource),
    /// The caller leads: render the subplan, then publish through the
    /// lease.
    Lead(Box<dyn SubplanLease + 'a>),
}

/// The hook evaluation consults at cut points (see module docs).
/// `acquire` may block while another query finishes rendering the same
/// subplan.
pub trait SubplanExchange {
    /// `false` short-circuits all per-node fingerprinting — the inert
    /// default path.
    fn active(&self) -> bool {
        true
    }

    /// Probes/claims the subplan identified by `(fp, vp)`.
    fn acquire(&self, fp: Fingerprint, vp: &Viewport) -> SubplanAccess<'_>;
}

/// The inert exchange: every subplan is computed privately and nothing
/// is fingerprinted. [`Expr::eval`](super::Expr::eval) routes through
/// this.
pub struct NullExchange;

impl SubplanExchange for NullExchange {
    fn active(&self) -> bool {
        false
    }

    fn acquire(&self, _fp: Fingerprint, _vp: &Viewport) -> SubplanAccess<'_> {
        SubplanAccess::Compute
    }
}

/// Acquire-or-render helper shared by the fused-chain query paths: the
/// exchange is probed for `fp`; on a miss the canvas is rendered by
/// `render` and published if this caller holds the lease. The fused
/// chains use this **only** for operand canvases they materialize
/// anyway (`C_Q`, the tagged query region) — never for the streamed
/// tiles themselves, so fusion is never broken by a cut point.
pub fn acquire_or_render(
    ex: &dyn SubplanExchange,
    fp: Fingerprint,
    vp: &Viewport,
    render: impl FnOnce() -> Canvas,
) -> Arc<Canvas> {
    if ex.active() {
        match ex.acquire(fp, vp) {
            SubplanAccess::Ready(c, _) => return c,
            SubplanAccess::Lead(mut lease) => {
                let c = Arc::new(render());
                lease.publish(&c);
                return c;
            }
            SubplanAccess::Compute => {}
        }
    }
    Arc::new(render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};
    use std::cell::RefCell;

    fn vp() -> Viewport {
        Viewport::new(BBox::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)), 4, 4)
    }

    #[test]
    fn null_exchange_is_inert() {
        let ex = NullExchange;
        assert!(!ex.active());
        assert!(matches!(
            ex.acquire(Fingerprint(7), &vp()),
            SubplanAccess::Compute
        ));
        let c = acquire_or_render(&ex, Fingerprint(7), &vp(), || Canvas::empty(vp()));
        assert!(c.is_empty());
    }

    /// A toy exchange: first acquire leads, later acquires are served
    /// the published canvas.
    struct Memo {
        slot: RefCell<Option<Arc<Canvas>>>,
    }

    struct MemoLease<'a>(&'a Memo);

    impl SubplanLease for MemoLease<'_> {
        fn publish(&mut self, canvas: &Arc<Canvas>) {
            *self.0.slot.borrow_mut() = Some(Arc::clone(canvas));
        }
    }

    impl SubplanExchange for Memo {
        fn acquire(&self, _fp: Fingerprint, _vp: &Viewport) -> SubplanAccess<'_> {
            match &*self.slot.borrow() {
                Some(c) => SubplanAccess::Ready(Arc::clone(c), SubplanSource::Cache),
                None => SubplanAccess::Lead(Box::new(MemoLease(self))),
            }
        }
    }

    #[test]
    fn acquire_or_render_publishes_then_reuses() {
        let memo = Memo {
            slot: RefCell::new(None),
        };
        let mut renders = 0;
        let first = acquire_or_render(&memo, Fingerprint(1), &vp(), || {
            renders += 1;
            Canvas::empty(vp())
        });
        let second = acquire_or_render(&memo, Fingerprint(1), &vp(), || {
            renders += 1;
            Canvas::empty(vp())
        });
        assert_eq!(renders, 1, "second acquire reused the published canvas");
        assert!(Arc::ptr_eq(&first, &second));
    }
}
