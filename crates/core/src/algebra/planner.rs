//! Cost-based physical plan choice (paper Section 7).
//!
//! "By appropriately modeling the cost functions of the operators
//! together with metadata about the input, the optimizer can choose a
//! plan that has a lower cost." This module is that optimizer step for
//! selection queries: given input statistics and a device profile, it
//! prices the two physical strategies —
//!
//! * **canvas plan**: render data + constraints, blend, mask
//!   (per-point cost independent of polygon complexity), vs
//! * **PIP refinement**: per-point point-in-polygon tests
//!   (cost ∝ points × constraints × vertices, but no canvas overheads),
//!
//! and picks the cheaper. The crossover it finds matches the measured
//! one in EXPERIMENTS.md: tiny inputs with simple polygons favor direct
//! refinement; everything else favors the canvas.

use canvas_raster::{DeviceProfile, PipelineStats};

/// Input statistics the optimizer consults (relational-style metadata).
#[derive(Clone, Copy, Debug)]
pub struct SelectionStats {
    /// Number of input points (inside the filter MBR).
    pub num_points: u64,
    /// Number of constraint polygons.
    pub num_constraints: u32,
    /// Average vertices per constraint polygon.
    pub avg_vertices: u32,
    /// Canvas resolution (longer side, pixels).
    pub resolution: u32,
    /// Fraction of canvas pixels a constraint covers (≈ selectivity).
    pub coverage: f64,
}

/// The two physical strategies for a polygonal selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Blend + mask on the canvas pipeline.
    CanvasBlendMask,
    /// Direct per-point PIP refinement (compute kernel).
    PipRefinement,
}

/// A priced plan choice.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    pub strategy: SelectionStrategy,
    pub canvas_cost: f64,
    pub pip_cost: f64,
}

/// Predicted pipeline work of the canvas selection plan.
pub fn canvas_plan_stats(s: &SelectionStats) -> PipelineStats {
    let texels = (s.resolution as u64).pow(2);
    let constraint_fragments = ((texels as f64) * s.coverage * s.num_constraints as f64) as u64;
    PipelineStats {
        // points render + constraint render + blend + mask.
        passes: 4,
        vertices: s.num_points + (s.num_constraints * s.avg_vertices) as u64,
        primitives: s.num_points + s.num_constraints as u64,
        fragments: s.num_points + constraint_fragments,
        boundary_fragments: 0,
        blend_ops: s.num_points + constraint_fragments + 2 * texels,
        fullscreen_texels: 2 * texels, // blend pass + mask pass
        scatter_reads: 0,
        scatter_writes: 0,
        bytes_uploaded: s.num_points * 16 + (s.num_constraints * s.avg_vertices) as u64 * 16,
        bytes_downloaded: s.num_points / 8,
        compute_edge_tests: 0,
    }
}

/// Predicted work of the direct PIP strategy.
pub fn pip_plan_stats(s: &SelectionStats) -> PipelineStats {
    PipelineStats {
        passes: 1,
        bytes_uploaded: s.num_points * 8 + (s.num_constraints * s.avg_vertices) as u64 * 8,
        bytes_downloaded: s.num_points / 8,
        compute_edge_tests: s.num_points * (s.num_constraints * s.avg_vertices) as u64,
        ..Default::default()
    }
}

/// Prices both strategies on the device and returns the cheaper one.
pub fn choose_selection_strategy(profile: &DeviceProfile, s: &SelectionStats) -> PlanChoice {
    let canvas_cost = profile.estimate(&canvas_plan_stats(s));
    let pip_cost = profile.estimate(&pip_plan_stats(s));
    PlanChoice {
        strategy: if canvas_cost <= pip_cost {
            SelectionStrategy::CanvasBlendMask
        } else {
            SelectionStrategy::PipRefinement
        },
        canvas_cost,
        pip_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(num_points: u64, num_constraints: u32, avg_vertices: u32) -> SelectionStats {
        SelectionStats {
            num_points,
            num_constraints,
            avg_vertices,
            resolution: 512,
            coverage: 0.3,
        }
    }

    #[test]
    fn tiny_simple_queries_prefer_pip() {
        // 1k points against one square: rendering a 512² canvas is
        // overkill; the optimizer must see that.
        let profile = DeviceProfile::nvidia_gtx_1070_max_q();
        let choice = choose_selection_strategy(&profile, &stats(1_000, 1, 4));
        assert_eq!(choice.strategy, SelectionStrategy::PipRefinement);
        assert!(choice.pip_cost < choice.canvas_cost);
    }

    #[test]
    fn large_complex_queries_prefer_canvas() {
        let profile = DeviceProfile::nvidia_gtx_1070_max_q();
        let choice = choose_selection_strategy(&profile, &stats(10_000_000, 2, 128));
        assert_eq!(choice.strategy, SelectionStrategy::CanvasBlendMask);
        assert!(choice.canvas_cost < choice.pip_cost);
    }

    #[test]
    fn more_constraints_flip_the_decision() {
        // The Figure 9(c) phenomenon as a plan choice: at an input size
        // where one simple constraint still favors direct PIP, a
        // 16-constraint disjunction flips the decision to the canvas
        // because PIP pays per constraint and the canvas does not.
        let profile = DeviceProfile::nvidia_gtx_1070_max_q();
        let one = choose_selection_strategy(&profile, &stats(20_000, 1, 64));
        let many = choose_selection_strategy(&profile, &stats(20_000, 16, 64));
        assert_eq!(one.strategy, SelectionStrategy::PipRefinement);
        assert_eq!(many.strategy, SelectionStrategy::CanvasBlendMask);
        // PIP cost inflates with constraints; canvas cost barely moves.
        assert!(many.pip_cost > 4.0 * one.pip_cost);
        assert!(many.canvas_cost < 2.0 * one.canvas_cost);
    }

    #[test]
    fn crossover_exists_and_is_monotone() {
        // Along growing n, once the canvas wins it keeps winning.
        let profile = DeviceProfile::nvidia_gtx_1070_max_q();
        let mut seen_canvas = false;
        for exp in 8..26 {
            let n = 1u64 << exp;
            let c = choose_selection_strategy(&profile, &stats(n, 1, 128));
            if seen_canvas {
                assert_eq!(
                    c.strategy,
                    SelectionStrategy::CanvasBlendMask,
                    "regressed to PIP at n = {n}"
                );
            }
            if c.strategy == SelectionStrategy::CanvasBlendMask {
                seen_canvas = true;
            }
        }
        assert!(seen_canvas, "canvas never chosen");
    }

    #[test]
    fn devices_place_crossover_differently() {
        // Each device has a finite PIP→canvas crossover, and they land
        // at different input sizes: the decision is genuinely
        // device-dependent (Section 7's argument for pricing operators
        // per device). Interestingly the integrated GPU's crossover is
        // *earlier* — its compute units are weak relative to its fixed
        // raster costs, so per-point PIP work hurts it sooner.
        let find_crossover = |profile: &DeviceProfile| -> u64 {
            for exp in 6..30 {
                let n = 1u64 << exp;
                if choose_selection_strategy(profile, &stats(n, 1, 64)).strategy
                    == SelectionStrategy::CanvasBlendMask
                {
                    return n;
                }
            }
            u64::MAX
        };
        let nv = find_crossover(&DeviceProfile::nvidia_gtx_1070_max_q());
        let intel = find_crossover(&DeviceProfile::intel_uhd_630());
        assert!(nv != u64::MAX && intel != u64::MAX);
        assert_ne!(nv, intel, "crossovers should be device-specific");
        assert!(intel < nv, "weak compute units flip to canvas earlier");
    }
}
