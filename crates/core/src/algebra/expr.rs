//! Expression nodes and the evaluator.

use std::sync::Arc;

use crate::canvas::{AreaSource, Canvas, PointBatch};
use crate::device::Device;
use crate::info::BlendFn;
use crate::ops::{self, MaskSpec, PositionMap, ValueMap};
use canvas_geom::polygon::Polygon;
use canvas_raster::Viewport;

/// A canvas source: the leaves of a plan. Sources hold *vector* data and
/// are rendered on demand when the plan executes (paper Section 5:
/// "canvases are created on the fly").
#[derive(Clone)]
pub enum SourceSpec {
    /// A point data set (`C_P` — conceptually a collection of canvases,
    /// rendered as one accumulated canvas).
    Points(Arc<PointBatch>),
    /// One polygon record from a table, with its texel id.
    Polygon {
        table: AreaSource,
        record: usize,
        id: u32,
    },
    /// A whole polygon table rendered in one instanced draw with the
    /// given internal blend (the fused `B*` form).
    PolygonSet { table: AreaSource, blend: BlendFn },
    /// `Circ[(x,y), r]()`.
    Circle {
        center: canvas_geom::Point,
        radius: f64,
        id: u32,
    },
    /// `Rect[l1, l2]()`.
    Rect {
        l1: canvas_geom::Point,
        l2: canvas_geom::Point,
        id: u32,
    },
    /// `HS[a, b, c]()`.
    HalfSpace { a: f64, b: f64, c: f64, id: u32 },
    /// An already-materialized canvas (sub-query result).
    Literal(Arc<Canvas>),
}

impl SourceSpec {
    fn label(&self) -> String {
        match self {
            SourceSpec::Points(b) => format!("C_P[{} points]", b.len()),
            SourceSpec::Polygon { record, id, .. } => {
                format!("C_Y[record {record}, id {id}]")
            }
            SourceSpec::PolygonSet { table, blend } => {
                format!("C_Y*[{} polygons, {}]", table.len(), blend.symbol())
            }
            SourceSpec::Circle { radius, .. } => format!("Circ[r={radius}]"),
            SourceSpec::Rect { .. } => "Rect[l1,l2]".to_string(),
            SourceSpec::HalfSpace { a, b, c, .. } => format!("HS[{a},{b},{c}]"),
            SourceSpec::Literal(_) => "C_lit".to_string(),
        }
    }

    fn render(&self, dev: &mut Device, vp: Viewport) -> Canvas {
        match self {
            SourceSpec::Points(batch) => crate::source::render_points(dev, vp, batch),
            SourceSpec::Polygon { table, record, id } => {
                crate::source::render_polygon(dev, vp, table, *record, *id)
            }
            SourceSpec::PolygonSet { table, blend } => {
                crate::source::render_polygon_set(dev, vp, table, *blend)
            }
            SourceSpec::Circle { center, radius, id } => {
                ops::circle_canvas(dev, vp, *center, *radius, *id)
            }
            SourceSpec::Rect { l1, l2, id } => ops::rect_canvas(dev, vp, *l1, *l2, *id),
            SourceSpec::HalfSpace { a, b, c, id } => {
                ops::halfspace_canvas(dev, vp, *a, *b, *c, *id)
            }
            SourceSpec::Literal(c) => (**c).clone(),
        }
    }
}

/// A plan node. Every node evaluates to a canvas — the algebra is closed.
#[derive(Clone)]
pub enum Expr {
    Source(SourceSpec),
    /// `B[⊙](left, right)`.
    Blend {
        op: BlendFn,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `B*[⊙](inputs…)`.
    MultiBlend {
        op: BlendFn,
        inputs: Vec<Expr>,
    },
    /// `M[M](input)`.
    Mask {
        spec: MaskSpec,
        input: Box<Expr>,
    },
    /// `G[γ](input)` with position-form γ.
    GeomTransform {
        gamma: PositionMap,
        input: Box<Expr>,
    },
    /// `D*[γ](input)` — dissect + value-form transform, fused to a
    /// scatter into `groups` group slots (Section 4.3 aggregation shape).
    MapScatter {
        gamma: ValueMap,
        groups: u32,
        combine: BlendFn,
        input: Box<Expr>,
    },
    /// `V[f](input)` with a named function.
    ValueTransform {
        name: &'static str,
        f: Arc<dyn Fn(canvas_geom::Point, crate::info::Texel) -> crate::info::Texel + Send + Sync>,
        input: Box<Expr>,
    },
}

impl Expr {
    // ----- constructors (builder style) ---------------------------------

    pub fn points(batch: Arc<PointBatch>) -> Expr {
        Expr::Source(SourceSpec::Points(batch))
    }

    pub fn query_polygon(poly: Polygon, id: u32) -> Expr {
        Expr::Source(SourceSpec::Polygon {
            table: Arc::new(vec![poly]),
            record: 0,
            id,
        })
    }

    pub fn polygon_record(table: AreaSource, record: usize, id: u32) -> Expr {
        Expr::Source(SourceSpec::Polygon { table, record, id })
    }

    pub fn polygon_set(table: AreaSource, blend: BlendFn) -> Expr {
        Expr::Source(SourceSpec::PolygonSet { table, blend })
    }

    pub fn literal(c: Canvas) -> Expr {
        Expr::Source(SourceSpec::Literal(Arc::new(c)))
    }

    pub fn blend(op: BlendFn, left: Expr, right: Expr) -> Expr {
        Expr::Blend {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn multi_blend(op: BlendFn, inputs: Vec<Expr>) -> Expr {
        Expr::MultiBlend { op, inputs }
    }

    pub fn mask(spec: MaskSpec, input: Expr) -> Expr {
        Expr::Mask {
            spec,
            input: Box::new(input),
        }
    }

    pub fn geom_transform(gamma: PositionMap, input: Expr) -> Expr {
        Expr::GeomTransform {
            gamma,
            input: Box::new(input),
        }
    }

    pub fn map_scatter(gamma: ValueMap, groups: u32, combine: BlendFn, input: Expr) -> Expr {
        Expr::MapScatter {
            gamma,
            groups,
            combine,
            input: Box::new(input),
        }
    }

    pub fn value_transform(
        name: &'static str,
        f: Arc<dyn Fn(canvas_geom::Point, crate::info::Texel) -> crate::info::Texel + Send + Sync>,
        input: Expr,
    ) -> Expr {
        Expr::ValueTransform {
            name,
            f,
            input: Box::new(input),
        }
    }

    // ----- evaluation ----------------------------------------------------

    /// Executes the plan on a device within the given viewport.
    pub fn eval(&self, dev: &mut Device, vp: Viewport) -> Canvas {
        self.eval_via(dev, vp, &super::subplan::NullExchange)
    }

    /// Executes the plan with a [`SubplanExchange`](super::subplan::SubplanExchange) consulted at every
    /// cut point (see
    /// [`algebra::subplan`](super::subplan)): canvas-producing
    /// subexpressions another query already rendered are reused, and
    /// subexpressions this evaluation leads on are published for
    /// concurrent queries to subscribe to. With the inert
    /// [`NullExchange`](super::subplan::NullExchange) this is exactly
    /// [`eval`](Self::eval) — no per-node fingerprinting happens.
    ///
    /// Sharing is invisible in results: rendering is deterministic, so
    /// an exchanged canvas is bit-identical to the one this evaluation
    /// would have produced itself.
    pub fn eval_via(
        &self,
        dev: &mut Device,
        vp: Viewport,
        ex: &dyn super::subplan::SubplanExchange,
    ) -> Canvas {
        let arc = self.eval_node(dev, vp, ex, 0, 0);
        // The root is never exchanged (depth 0), so this Arc is
        // private and unwraps without a copy.
        Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone())
    }

    /// One node of the exchange-aware evaluation. Cut points at depth
    /// ≥ 1 go through the exchange — the root (depth 0) is the whole
    /// plan, whose identity the engine's result cache already owns.
    /// `node` is this node's pre-order id within the evaluated plan,
    /// stamped onto its span so execution-report rows join to plan
    /// nodes (see [`plan_nodes`](super::fingerprint::plan_nodes)).
    fn eval_node(
        &self,
        dev: &mut Device,
        vp: Viewport,
        ex: &dyn super::subplan::SubplanExchange,
        depth: usize,
        node: u64,
    ) -> Arc<Canvas> {
        use super::subplan::SubplanAccess;
        if depth > 0 && ex.active() && super::fingerprint::is_cut_point(self) {
            let fp = super::fingerprint::fingerprint(self);
            // The acquire may block behind another query's in-flight
            // render of the same subplan — that wait is the span.
            let access = {
                let mut wait = canvas_obs::span("subplan_wait", "algebra");
                wait.arg_u64("fingerprint", fp.0 as u64);
                ex.acquire(fp, &vp)
            };
            match access {
                SubplanAccess::Ready(c, src) => {
                    // A shared hit still gets this node's span — with a
                    // `src` marker instead of render work — so the
                    // report row shows *why* the node cost ~nothing.
                    let mut hit = canvas_obs::span(self.node_name(), "algebra");
                    hit.arg_u64("node", node);
                    hit.arg_u64("depth", depth as u64);
                    hit.arg_u64("bytes", c.size_bytes() as u64);
                    hit.arg_str("src", || src.as_str().to_string());
                    return c;
                }
                SubplanAccess::Lead(mut lease) => {
                    let c = Arc::new(self.compute_node(dev, vp, ex, depth, node));
                    lease.publish(&c);
                    return c;
                }
                SubplanAccess::Compute => {}
            }
        }
        Arc::new(self.compute_node(dev, vp, ex, depth, node))
    }

    /// Renders this node from its children (which recurse through the
    /// exchange). Children take consecutive pre-order id ranges:
    /// `node + 1` for the first child, advancing by each earlier
    /// sibling's [`node_count`](Self::node_count).
    fn compute_node(
        &self,
        dev: &mut Device,
        vp: Viewport,
        ex: &dyn super::subplan::SubplanExchange,
        depth: usize,
        node: u64,
    ) -> Canvas {
        let mut node_span = canvas_obs::span(self.node_name(), "algebra");
        node_span.arg_u64("node", node);
        node_span.arg_u64("depth", depth as u64);
        let result = match self {
            Expr::Source(s) => s.render(dev, vp),
            Expr::Blend { op, left, right } => {
                let l = left.eval_node(dev, vp, ex, depth + 1, node + 1);
                let r = right.eval_node(dev, vp, ex, depth + 1, node + 1 + left.node_count());
                ops::blend(dev, &l, &r, *op)
            }
            Expr::MultiBlend { op, inputs } => {
                if inputs.is_empty() {
                    Canvas::empty(vp)
                } else {
                    let mut child = node + 1;
                    let mut acc = inputs[0].eval_node(dev, vp, ex, depth + 1, child);
                    child += inputs[0].node_count();
                    for e in &inputs[1..] {
                        let c = e.eval_node(dev, vp, ex, depth + 1, child);
                        child += e.node_count();
                        acc = Arc::new(ops::blend(dev, &acc, &c, *op));
                    }
                    Arc::try_unwrap(acc).unwrap_or_else(|a| (*a).clone())
                }
            }
            Expr::Mask { spec, input } => {
                let c = input.eval_node(dev, vp, ex, depth + 1, node + 1);
                ops::mask(dev, &c, spec)
            }
            Expr::GeomTransform { gamma, input } => {
                let c = input.eval_node(dev, vp, ex, depth + 1, node + 1);
                ops::transform_positions(dev, &c, gamma, vp)
            }
            Expr::MapScatter {
                gamma,
                groups,
                combine,
                input,
            } => {
                let c = input.eval_node(dev, vp, ex, depth + 1, node + 1);
                ops::map_scatter(dev, &c, gamma, ops::group_viewport(*groups), *combine)
            }
            Expr::ValueTransform { f, input, .. } => {
                let c = input.eval_node(dev, vp, ex, depth + 1, node + 1);
                ops::value_transform(dev, &c, |p, t| f(p, t))
            }
        };
        node_span.arg_u64("bytes", result.size_bytes() as u64);
        result
    }

    /// Span name for this node's operator (trace taxonomy, cat
    /// `"algebra"`).
    fn node_name(&self) -> &'static str {
        match self {
            Expr::Source(_) => "source",
            Expr::Blend { .. } => "blend",
            Expr::MultiBlend { .. } => "multi_blend",
            Expr::Mask { .. } => "mask",
            Expr::GeomTransform { .. } => "geom_transform",
            Expr::MapScatter { .. } => "map_scatter",
            Expr::ValueTransform { .. } => "value_transform",
        }
    }

    /// Number of nodes in this subtree (this node included) — the
    /// pre-order id arithmetic both the evaluator and
    /// [`plan_nodes`](super::fingerprint::plan_nodes) rely on.
    pub fn node_count(&self) -> u64 {
        1 + match self {
            Expr::Source(_) => 0,
            Expr::Blend { left, right, .. } => left.node_count() + right.node_count(),
            Expr::MultiBlend { inputs, .. } => inputs.iter().map(Expr::node_count).sum(),
            Expr::Mask { input, .. }
            | Expr::GeomTransform { input, .. }
            | Expr::MapScatter { input, .. }
            | Expr::ValueTransform { input, .. } => input.node_count(),
        }
    }

    /// This node's operator label in the paper's plan-diagram notation
    /// (`B[⊙]`, `Mp'…`, `C_P[…]`, …) — one line of [`plan`](Self::plan)
    /// without the children, used by execution-report rows.
    pub fn node_label(&self) -> String {
        match self {
            Expr::Source(s) => s.label(),
            Expr::Blend { op, .. } => format!("B[{}]", op.symbol()),
            Expr::MultiBlend { op, inputs } => {
                format!("B*[{}] ({} inputs)", op.symbol(), inputs.len())
            }
            Expr::Mask { spec, .. } => spec.label(),
            Expr::GeomTransform { gamma, .. } => format!("G[{}]", gamma.label()),
            Expr::MapScatter { gamma, groups, .. } => {
                format!("D*[{}] → {groups} groups", gamma.name)
            }
            Expr::ValueTransform { name, .. } => format!("V[{name}]"),
        }
    }

    /// Executes the plan through a [`SharedDevice`](crate::device::SharedDevice) — the thread-safe
    /// eval path (`&self` on both plan and device): any number of
    /// threads may evaluate plans against one shared executor pool
    /// concurrently; counted work folds into the shared totals.
    pub fn eval_shared(&self, shared: &crate::device::SharedDevice, vp: Viewport) -> Canvas {
        shared.run(|dev| self.eval(dev, vp))
    }

    // ----- plan diagrams --------------------------------------------------

    /// Renders the plan as an indented tree (the textual analogue of the
    /// paper's plan diagrams, Figures 5–8).
    pub fn plan(&self) -> String {
        let mut out = String::new();
        self.plan_into(&mut out, 0);
        out
    }

    fn plan_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Expr::Source(s) => {
                out.push_str(&format!("{pad}{}\n", s.label()));
            }
            Expr::Blend { op, left, right } => {
                out.push_str(&format!("{pad}B[{}]\n", op.symbol()));
                left.plan_into(out, depth + 1);
                right.plan_into(out, depth + 1);
            }
            Expr::MultiBlend { op, inputs } => {
                out.push_str(&format!(
                    "{pad}B*[{}] ({} inputs)\n",
                    op.symbol(),
                    inputs.len()
                ));
                for e in inputs {
                    e.plan_into(out, depth + 1);
                }
            }
            Expr::Mask { spec, input } => {
                out.push_str(&format!("{pad}{}\n", spec.label()));
                input.plan_into(out, depth + 1);
            }
            Expr::GeomTransform { gamma, input } => {
                out.push_str(&format!("{pad}G[{}]\n", gamma.label()));
                input.plan_into(out, depth + 1);
            }
            Expr::MapScatter {
                gamma,
                groups,
                input,
                ..
            } => {
                out.push_str(&format!("{pad}D*[{}] → {groups} groups\n", gamma.name));
                input.plan_into(out, depth + 1);
            }
            Expr::ValueTransform { name, input, .. } => {
                out.push_str(&format!("{pad}V[{name}]\n"));
                input.plan_into(out, depth + 1);
            }
        }
    }

    // ----- cost heuristic --------------------------------------------------

    /// Rough cost in "full-screen pass equivalents": how many times the
    /// plan touches every pixel of the viewport, plus per-source render
    /// work. Used to compare rewritten plans (Section 7, query
    /// optimization discussion); the device model gives the real numbers.
    pub fn cost(&self) -> f64 {
        match self {
            Expr::Source(SourceSpec::Points(b)) => 0.1 + b.len() as f64 * 1e-6,
            Expr::Source(SourceSpec::PolygonSet { table, .. }) => 0.5 * table.len() as f64,
            Expr::Source(_) => 0.5,
            Expr::Blend { left, right, .. } => 1.0 + left.cost() + right.cost(),
            Expr::MultiBlend { inputs, .. } => {
                inputs.len().saturating_sub(1) as f64 + inputs.iter().map(Expr::cost).sum::<f64>()
            }
            Expr::Mask { input, .. } => 1.0 + input.cost(),
            Expr::GeomTransform { input, .. } => 2.0 + input.cost(),
            Expr::MapScatter { input, .. } => 1.0 + input.cost(),
            Expr::ValueTransform { input, .. } => 1.0 + input.cost(),
        }
    }
}

impl std::fmt::Debug for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.plan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CountCond;
    use canvas_geom::{BBox, Point};

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            16,
            16,
        )
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    /// The paper's Figure 5 plan: select points inside a polygon.
    fn figure5_plan() -> Expr {
        let data = Arc::new(PointBatch::from_points(vec![
            Point::new(2.0, 2.0),
            Point::new(8.0, 8.0),
        ]));
        Expr::mask(
            MaskSpec::PointInAreas(CountCond::Ge(1)),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data),
                Expr::query_polygon(square(0.0, 0.0, 5.0), 1),
            ),
        )
    }

    #[test]
    fn figure5_plan_evaluates_correctly() {
        let mut dev = Device::nvidia();
        let result = figure5_plan().eval(&mut dev, vp());
        assert_eq!(result.point_records(), vec![0]);
    }

    #[test]
    fn plan_diagram_structure() {
        let plan = figure5_plan().plan();
        let lines: Vec<&str> = plan.lines().collect();
        assert!(lines[0].starts_with("Mp'"));
        assert!(lines[1].trim_start().starts_with("B[⊙]"));
        assert!(lines[2].trim_start().starts_with("C_P"));
        assert!(lines[3].trim_start().starts_with("C_Y"));
    }

    #[test]
    fn closure_composition() {
        // A masked result is a first-class input to further operators.
        let mut dev = Device::nvidia();
        let inner = figure5_plan().eval(&mut dev, vp());
        let outer = Expr::mask(
            MaskSpec::Texel("has point", Arc::new(|t: &crate::info::Texel| t.has(0))),
            Expr::literal(inner),
        );
        let result = outer.eval(&mut dev, vp());
        assert_eq!(result.point_records(), vec![0]);
    }

    #[test]
    fn multiblend_empty_gives_empty_canvas() {
        let mut dev = Device::nvidia();
        let c = Expr::multi_blend(BlendFn::Over, vec![]).eval(&mut dev, vp());
        assert!(c.is_empty());
    }

    #[test]
    fn utility_sources_evaluate() {
        let mut dev = Device::nvidia();
        let circ = Expr::Source(SourceSpec::Circle {
            center: Point::new(5.0, 5.0),
            radius: 2.0,
            id: 1,
        })
        .eval(&mut dev, vp());
        assert!(circ.value_at(Point::new(5.0, 5.0)).has(2));
        let hs = Expr::Source(SourceSpec::HalfSpace {
            a: 0.0,
            b: 1.0,
            c: -5.0,
            id: 1,
        })
        .eval(&mut dev, vp());
        assert!(hs.value_at(Point::new(5.0, 2.0)).has(2));
        assert!(hs.value_at(Point::new(5.0, 8.0)).is_null());
    }

    #[test]
    fn cost_prefers_fused_polygon_set() {
        let table: AreaSource = Arc::new((0..8).map(|i| square(i as f64, 0.0, 0.5)).collect());
        let unfused = Expr::multi_blend(
            BlendFn::AreaCount,
            (0..8)
                .map(|i| Expr::polygon_record(table.clone(), i, i as u32))
                .collect(),
        );
        let fused = Expr::polygon_set(table, BlendFn::AreaCount);
        assert!(fused.cost() < unfused.cost());
    }

    #[test]
    fn value_transform_node_evaluates() {
        // One Voronoi insertion step expressed as a plan node.
        let mut dev = Device::nvidia();
        let site = Point::new(5.0, 5.0);
        let plan = Expr::value_transform(
            "voronoi step",
            Arc::new(move |p: Point, _| crate::info::Texel::area(0, p.dist_sq(site) as f32, 0.0)),
            Expr::literal(Canvas::empty(vp())),
        );
        assert!(plan.plan().contains("V[voronoi step]"));
        let c = plan.eval(&mut dev, vp());
        assert_eq!(c.non_null_count(), 16 * 16);
        let near = c.value_at(Point::new(5.0, 5.0)).get(2).unwrap().v1;
        let far = c.value_at(Point::new(0.5, 0.5)).get(2).unwrap().v1;
        assert!(near < far);
    }

    #[test]
    fn geom_transform_node_evaluates() {
        let mut dev = Device::nvidia();
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let moved = Expr::geom_transform(
            PositionMap::Translate(Point::new(4.0, 4.0)),
            Expr::points(data),
        )
        .eval(&mut dev, vp());
        assert!(moved.value_at(Point::new(5.0, 5.0)).has(0));
    }
}
