//! The hybrid boundary index: exact vector data behind boundary pixels.
//!
//! The paper (Section 5) keeps the canvas exact despite discretization by
//! storing, alongside the texture: (a) the actual location of points,
//! and (b) for every conservative-rasterized boundary pixel of a polygon
//! or line, "a simple index ... that maps each boundary pixel to the
//! actual vector representation". The mask operator consults this index
//! to run exact tests only where pixels straddle a boundary.
//!
//! Entries are kept in pixel-sorted arrays (binary-searched, no per-pixel
//! allocation); sources of vector geometry are shared via `Arc` so blends
//! do not copy polygons.

use canvas_geom::Point;

/// An exact 0-primitive behind a pixel: record id, true location, and
/// the record's attribute weight (used by SUM-style aggregations).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointEntry {
    pub pixel: u32,
    pub record: u32,
    pub loc: Point,
    pub weight: f32,
}

/// A 2-primitive whose *boundary* touches a pixel; `source`/`record`
/// resolve to the vector polygon through the owning canvas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AreaEntry {
    pub pixel: u32,
    pub source: u16,
    pub record: u32,
}

/// A 1-primitive touching a pixel (lines are all-boundary coverage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineEntry {
    pub pixel: u32,
    pub source: u16,
    pub record: u32,
}

/// Pixel-sorted boundary entries for one canvas.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BoundaryIndex {
    points: Vec<PointEntry>,
    areas: Vec<AreaEntry>,
    lines: Vec<LineEntry>,
    sorted: bool,
}

impl BoundaryIndex {
    pub fn new() -> Self {
        BoundaryIndex::default()
    }

    pub fn push_point(&mut self, e: PointEntry) {
        self.points.push(e);
        self.sorted = false;
    }

    pub fn push_area(&mut self, e: AreaEntry) {
        self.areas.push(e);
        self.sorted = false;
    }

    pub fn push_line(&mut self, e: LineEntry) {
        self.lines.push(e);
        self.sorted = false;
    }

    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    pub fn num_areas(&self) -> usize {
        self.areas.len()
    }

    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Sorts all entry arrays by pixel (idempotent; required before
    /// range lookups).
    pub fn sort(&mut self) {
        if self.sorted {
            return;
        }
        self.points.sort_by_key(|e| e.pixel);
        self.areas.sort_by_key(|e| e.pixel);
        self.lines.sort_by_key(|e| e.pixel);
        self.sorted = true;
    }

    fn range_of<T, K: Fn(&T) -> u32>(items: &[T], key: K, pixel: u32) -> &[T] {
        let lo = items.partition_point(|e| key(e) < pixel);
        let hi = items.partition_point(|e| key(e) <= pixel);
        &items[lo..hi]
    }

    /// Exact point entries behind a pixel. Call [`sort`](Self::sort) first.
    pub fn points_at(&self, pixel: u32) -> &[PointEntry] {
        debug_assert!(self.sorted, "boundary index must be sorted");
        Self::range_of(&self.points, |e| e.pixel, pixel)
    }

    /// Boundary-area entries behind a pixel.
    pub fn areas_at(&self, pixel: u32) -> &[AreaEntry] {
        debug_assert!(self.sorted, "boundary index must be sorted");
        Self::range_of(&self.areas, |e| e.pixel, pixel)
    }

    /// Line entries behind a pixel.
    pub fn lines_at(&self, pixel: u32) -> &[LineEntry] {
        debug_assert!(self.sorted, "boundary index must be sorted");
        Self::range_of(&self.lines, |e| e.pixel, pixel)
    }

    /// All point entries (pixel-sorted).
    pub fn points(&self) -> &[PointEntry] {
        &self.points
    }

    /// All area entries (pixel-sorted).
    pub fn areas(&self) -> &[AreaEntry] {
        &self.areas
    }

    /// All line entries (pixel-sorted).
    pub fn lines(&self) -> &[LineEntry] {
        &self.lines
    }

    /// Merges another index, remapping its source indexes through
    /// `area_remap`/`line_remap` (used when blending canvases whose
    /// geometry source tables are concatenated).
    pub fn merge_remapped(
        &mut self,
        other: &BoundaryIndex,
        area_remap: &[u16],
        line_remap: &[u16],
    ) {
        self.points.extend_from_slice(&other.points);
        self.areas.extend(other.areas.iter().map(|e| AreaEntry {
            pixel: e.pixel,
            source: area_remap[e.source as usize],
            record: e.record,
        }));
        self.lines.extend(other.lines.iter().map(|e| LineEntry {
            pixel: e.pixel,
            source: line_remap[e.source as usize],
            record: e.record,
        }));
        self.sorted = false;
    }

    /// Keeps only the point entries satisfying the predicate (used by the
    /// mask operator's exact refinement).
    pub fn retain_points(&mut self, f: impl FnMut(&PointEntry) -> bool) {
        self.points.retain(f);
    }

    /// Keeps only entries whose pixels satisfy the predicate (used when a
    /// mask drops pixels wholesale).
    pub fn retain_pixels(&mut self, mut f: impl FnMut(u32) -> bool) {
        self.points.retain(|e| f(e.pixel));
        self.areas.retain(|e| f(e.pixel));
        self.lines.retain(|e| f(e.pixel));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(pixel: u32, record: u32) -> PointEntry {
        PointEntry {
            pixel,
            record,
            loc: Point::new(record as f64, 0.0),
            weight: 1.0,
        }
    }

    #[test]
    fn sorted_range_lookup() {
        let mut b = BoundaryIndex::new();
        b.push_point(pe(5, 1));
        b.push_point(pe(2, 2));
        b.push_point(pe(5, 3));
        b.push_point(pe(9, 4));
        b.sort();
        let at5 = b.points_at(5);
        assert_eq!(at5.len(), 2);
        assert!(at5.iter().any(|e| e.record == 1));
        assert!(at5.iter().any(|e| e.record == 3));
        assert_eq!(b.points_at(2).len(), 1);
        assert!(b.points_at(7).is_empty());
    }

    #[test]
    fn area_and_line_lookup() {
        let mut b = BoundaryIndex::new();
        b.push_area(AreaEntry {
            pixel: 3,
            source: 0,
            record: 10,
        });
        b.push_line(LineEntry {
            pixel: 3,
            source: 0,
            record: 20,
        });
        b.sort();
        assert_eq!(b.areas_at(3)[0].record, 10);
        assert_eq!(b.lines_at(3)[0].record, 20);
        assert!(b.areas_at(0).is_empty());
    }

    #[test]
    fn merge_remaps_sources() {
        let mut a = BoundaryIndex::new();
        a.push_area(AreaEntry {
            pixel: 1,
            source: 0,
            record: 1,
        });
        let mut b = BoundaryIndex::new();
        b.push_area(AreaEntry {
            pixel: 2,
            source: 0,
            record: 2,
        });
        b.push_line(LineEntry {
            pixel: 2,
            source: 0,
            record: 3,
        });
        a.merge_remapped(&b, &[7], &[4]);
        a.sort();
        assert_eq!(a.areas_at(2)[0].source, 7);
        assert_eq!(a.lines_at(2)[0].source, 4);
        assert_eq!(a.areas_at(1)[0].source, 0);
    }

    #[test]
    fn retain_filters() {
        let mut b = BoundaryIndex::new();
        for i in 0..10 {
            b.push_point(pe(i, i));
        }
        b.retain_pixels(|p| p % 2 == 0);
        assert_eq!(b.num_points(), 5);
        b.retain_points(|e| e.record < 4);
        assert_eq!(b.num_points(), 2);
    }

    #[test]
    fn sort_idempotent() {
        let mut b = BoundaryIndex::new();
        b.push_point(pe(3, 0));
        b.push_point(pe(1, 1));
        b.sort();
        let snapshot = b.clone();
        b.sort();
        assert_eq!(b, snapshot);
    }
}
