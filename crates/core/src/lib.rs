//! # canvas-core
//!
//! The primary contribution of *"A GPU-friendly Geometric Data Model and
//! Algebra for Spatial Queries"* (Doraiswamy & Freire, SIGMOD 2020),
//! reproduced in Rust:
//!
//! * the **canvas** data model — a uniform raster+vector-hybrid
//!   representation of geometric objects ([`canvas::Canvas`],
//!   [`info::Texel`], Definitions 1–7),
//! * the **closed algebra** of five fundamental operators (Geometric
//!   Transform, Value Transform, Mask, Blend, Dissect), two derived
//!   operators (Multiway Blend, Map) and three utility generators
//!   (Circle, Rectangle, Half-space) — module [`ops`],
//! * an **expression layer** with plan diagrams and rewrite rules —
//!   module [`algebra`],
//! * the **query formulations** of Section 4/5: selections, joins,
//!   aggregations, k-nearest-neighbors, Voronoi diagrams,
//!   origin–destination queries — module [`queries`].
//!
//! Everything executes on the software graphics pipeline of
//! `canvas-raster` through a [`device::Device`]; results are *exact*
//! thanks to conservative rasterization plus the hybrid boundary index
//! (paper Section 5).
//!
//! ## Quick start
//!
//! ```
//! use canvas_core::prelude::*;
//! use canvas_geom::{BBox, Point, Polygon};
//!
//! // A tiny data set and a query polygon.
//! let data = PointBatch::from_points(vec![
//!     Point::new(2.0, 2.0),
//!     Point::new(8.0, 8.0),
//! ]);
//! let q = Polygon::simple(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(5.0, 0.0),
//!     Point::new(5.0, 5.0),
//!     Point::new(0.0, 5.0),
//! ]).unwrap();
//!
//! // SELECT * FROM data WHERE Location INSIDE q
//! let mut dev = Device::nvidia();
//! let extent = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
//! let vp = Viewport::square_pixels(extent, 64);
//! let result = queries::selection::select_points_in_polygon(&mut dev, vp, &data, &q);
//! assert_eq!(result.records, vec![0]);
//! ```

pub mod algebra;
pub mod boundary;
pub mod bytebuf;
pub mod canvas;
pub mod device;
pub mod info;
pub mod ops;
pub mod queries;
pub mod serial;
pub mod source;
pub mod table;
pub mod versioned;
pub mod viz;

pub use canvas::{Canvas, PointBatch};
pub use device::{Device, SharedDevice};
pub use info::{BlendFn, DimInfo, Texel};
pub use table::{SpatialTable, TableError};
pub use versioned::{
    patch_live_heatmap, render_live_heatmap, AppendOutcome, PatchOutcome, TableSnapshot,
    VersionedTable,
};

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use crate::algebra::{Expr, Fingerprint};
    pub use crate::canvas::{AreaSource, Canvas, LineSource, PointBatch};
    pub use crate::device::{Device, SharedDevice};
    pub use crate::info::{BlendFn, DimInfo, Texel};
    pub use crate::ops::{
        blend, circle_canvas, dissect, dissect_iter, dissect_par, group_viewport, halfspace_canvas,
        map_scatter, mask, multiway_blend, rect_canvas, run_points_chain,
        run_points_chain_materialized, run_polygons_chain, run_polygons_chain_materialized,
        transform_by_value, transform_positions, value_transform, CanvasChain, CanvasOp,
        ChainOutcome, CountCond, MaskSpec, PositionMap, ValueMap,
    };
    pub use crate::queries;
    pub use crate::source::{
        render_points, render_polygon, render_polygon_set, render_polylines, render_query_polygon,
    };
    pub use crate::versioned::{
        patch_live_heatmap, render_live_heatmap, TableSnapshot, VersionedTable,
    };
    pub use canvas_raster::Viewport;
}
