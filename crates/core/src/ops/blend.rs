//! The Blend operator `B[⊙](C₁, C₂)` and the derived Multiway Blend
//! `B*[⊙](C₁ … Cₙ)` (paper Sections 3.1, 3.2).
//!
//! Blend merges two canvases pixel-wise through a blend function
//! `⊙ : S³ × S³ → S³` — on the GPU this is programmable alpha blending
//! of two textures. Both canvases must share a viewport (the Geometric
//! Transform operator exists to align them first).
//!
//! The certain-cover planes add and the boundary indexes merge (with
//! geometry-source remapping), so exactness survives composition.
//!
//! The texel and cover blend passes run band-parallel on the device's
//! persistent worker pool (`Pipeline::blend_into`); per-texel blends
//! are independent, so the decomposition cannot change the result.

use crate::canvas::Canvas;
use crate::device::Device;
use crate::info::BlendFn;

/// `C' = B[⊙](a, b)` — pixel-wise blend of two canvases.
///
/// Panics when the viewports differ: the algebra requires operands in a
/// common coordinate system (paper Section 3.1, Geometric Transform
/// discussion).
pub fn blend(dev: &mut Device, a: &Canvas, b: &Canvas, op: BlendFn) -> Canvas {
    assert_eq!(
        a.viewport(),
        b.viewport(),
        "blend operands must share a viewport"
    );
    let vp = *a.viewport();

    // Texel plane: programmable blend pass. Every built-in `BlendFn`
    // lowers to a SIMD row kernel (`BlendFn::tag`) that is bit-identical
    // to per-texel `apply` — same work counters, same banding.
    let mut texels = a.texels().clone();
    dev.pipeline()
        .blend_into_tagged(&mut texels, b.texels(), op.tag());

    // Certain-cover planes add (2-primitive cover counts are additive):
    // the SIMD saturating-add row kernel.
    let mut cover = a.cover().clone();
    dev.pipeline().blend_cover_into(&mut cover, b.cover());

    // Merge geometry sources and boundary entries.
    let mut out = Canvas::from_parts(
        vp,
        texels,
        cover,
        a.boundary().clone(),
        a.area_sources().to_vec(),
        a.line_sources().to_vec(),
    );
    let area_remap: Vec<u16> = b
        .area_sources()
        .iter()
        .map(|s| out.add_area_source(s.clone()))
        .collect();
    let line_remap: Vec<u16> = b
        .line_sources()
        .iter()
        .map(|s| out.add_line_source(s.clone()))
        .collect();
    out.boundary_mut()
        .merge_remapped(b.boundary(), &area_remap, &line_remap);
    out.boundary_mut().sort();
    out
}

/// `C' = B*[⊙](inputs…)` — left-deep fold of the binary blend
/// (Section 3.2). For associative `⊙` the grouping is free; the rewrite
/// module exploits that.
pub fn multiway_blend(dev: &mut Device, inputs: &[&Canvas], op: BlendFn) -> Option<Canvas> {
    let (first, rest) = inputs.split_first()?;
    let mut acc = (*first).clone();
    for c in rest {
        acc = blend(dev, &acc, c, op);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::info::Texel;
    use crate::source::{render_points, render_query_polygon};
    use canvas_geom::{BBox, Point, Polygon};
    use canvas_raster::Viewport;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn blend_points_with_polygon_figure1() {
        // The running example of Figure 1(b): merge points and polygon.
        let mut dev = Device::nvidia();
        let points = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(4.5, 4.5), Point::new(0.5, 0.5)]),
        );
        let poly = render_query_polygon(&mut dev, vp(), square(3.0, 3.0, 4.0), 1);
        let merged = blend(&mut dev, &points, &poly, BlendFn::PointOverArea);
        // Point inside polygon: both rows present.
        let t = merged.texel(4, 4);
        assert!(t.has(0));
        assert!(t.has(2));
        // Point outside: only 0-row.
        let t = merged.texel(0, 0);
        assert!(t.has(0));
        assert!(!t.has(2));
        // Polygon-only interior: only 2-row.
        let t = merged.texel(5, 5);
        assert!(!t.has(0));
        assert!(t.has(2));
        // Boundary info carried through.
        assert_eq!(merged.boundary().num_points(), 2);
        assert!(merged.boundary().num_areas() > 0);
        assert_eq!(merged.area_sources().len(), 1);
    }

    #[test]
    fn blend_cover_planes_add() {
        let mut dev = Device::nvidia();
        let a = render_query_polygon(&mut dev, vp(), square(1.0, 1.0, 6.0), 1);
        let b = render_query_polygon(&mut dev, vp(), square(3.0, 3.0, 6.0), 2);
        let m = blend(&mut dev, &a, &b, BlendFn::AreaCount);
        assert_eq!(m.cover().get(5, 5), 2); // overlap
        assert_eq!(m.cover().get(2, 2), 1); // a only
        assert_eq!(m.cover().get(8, 8), 1); // b only
        assert_eq!(m.texel(5, 5).get(2).unwrap().v1, 2.0);
    }

    #[test]
    fn blend_with_empty_is_identity_for_over() {
        let mut dev = Device::nvidia();
        let a = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(2.5, 2.5)]),
        );
        let empty = Canvas::empty(vp());
        let m = blend(&mut dev, &a, &empty, BlendFn::Over);
        assert_eq!(m.texel(2, 2), a.texel(2, 2));
        assert_eq!(m.non_null_count(), 1);
    }

    #[test]
    fn multiway_blend_folds_in_order() {
        let mut dev = Device::nvidia();
        let canvases: Vec<Canvas> = (0..3)
            .map(|i| {
                render_points(
                    &mut dev,
                    vp(),
                    &PointBatch::from_points(vec![Point::new(4.5, 4.5 + 0.01 * i as f64)]),
                )
            })
            .collect();
        let refs: Vec<&Canvas> = canvases.iter().collect();
        let m = multiway_blend(&mut dev, &refs, BlendFn::PointAccumulate).unwrap();
        assert_eq!(m.texel(4, 4).get(0).unwrap().v1, 3.0);
        assert!(multiway_blend(&mut dev, &[], BlendFn::Over).is_none());
    }

    #[test]
    fn blend_output_closed_under_algebra() {
        // Closure property: the output is a canvas usable as an input.
        let mut dev = Device::nvidia();
        let a = render_query_polygon(&mut dev, vp(), square(1.0, 1.0, 4.0), 1);
        let b = render_query_polygon(&mut dev, vp(), square(2.0, 2.0, 4.0), 2);
        let ab = blend(&mut dev, &a, &b, BlendFn::AreaCount);
        let c = render_query_polygon(&mut dev, vp(), square(3.0, 3.0, 4.0), 3);
        let abc = blend(&mut dev, &ab, &c, BlendFn::AreaCount);
        assert_eq!(abc.texel(3, 3).get(2).unwrap().v1, 3.0);
    }

    #[test]
    fn shared_source_tables_not_duplicated() {
        let mut dev = Device::nvidia();
        let table: crate::canvas::AreaSource =
            std::sync::Arc::new(vec![square(1.0, 1.0, 3.0), square(5.0, 5.0, 3.0)]);
        let a = crate::source::render_polygon(&mut dev, vp(), &table, 0, 0);
        let b = crate::source::render_polygon(&mut dev, vp(), &table, 1, 1);
        let m = blend(&mut dev, &a, &b, BlendFn::AreaCount);
        assert_eq!(m.area_sources().len(), 1, "identical Arc deduplicated");
    }

    #[test]
    #[should_panic(expected = "share a viewport")]
    fn mismatched_viewports_panic() {
        let mut dev = Device::nvidia();
        let a = Canvas::empty(vp());
        let other = Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)),
            10,
            10,
        );
        let b = Canvas::empty(other);
        let _ = blend(&mut dev, &a, &b, BlendFn::Over);
    }

    #[test]
    fn blended_value_matches_pointwise_apply() {
        let mut dev = Device::nvidia();
        let points = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(4.5, 4.5)]),
        );
        let poly = render_query_polygon(&mut dev, vp(), square(3.0, 3.0, 4.0), 1);
        let merged = blend(&mut dev, &points, &poly, BlendFn::PointOverArea);
        for y in 0..10 {
            for x in 0..10 {
                let expect = BlendFn::PointOverArea.apply(points.texel(x, y), poly.texel(x, y));
                assert_eq!(merged.texel(x, y), expect, "at ({x},{y})");
            }
        }
        let _ = Texel::null();
    }
}
