//! The Mask operator `M[M](C)` (paper Section 3.1) with exact boundary
//! refinement (Section 5).
//!
//! Mask keeps only the canvas regions whose value lies in the mask set
//! `M ⊂ S³` and nulls the rest — a per-pixel parallel test on the GPU.
//! Where the prototype differs from the naive definition is exactness:
//! pixels flagged by conservative rasterization as *boundary* pixels are
//! re-tested against the vector geometry, so query answers do not suffer
//! pixel-resolution error. Uniform (non-boundary) pixels never need
//! refinement because their whole area has one membership answer.
//!
//! Both mask passes execute band-parallel on the device's persistent
//! worker pool (`Pipeline::map_planes` / `map_planes_inplace`): bands
//! of the split texel + cover planes are claimed by pool executors and
//! band-local collections concatenate in row-major order, so results
//! are bit-identical at any thread count.

use crate::canvas::Canvas;
use crate::device::Device;
use crate::info::Texel;

/// Condition on a polygon-incidence count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountCond {
    /// Exactly `k` 2-primitives incident (the paper's `Mp`: `= 1`,
    /// `My`: `= 2`, conjunction of n constraints: `= n`).
    Eq(u32),
    /// At least `k` incident (the disjunction mask `Mp'` of Section 5.1:
    /// `≥ 1`).
    Ge(u32),
}

impl CountCond {
    #[inline]
    pub fn eval(self, count: u32) -> bool {
        match self {
            CountCond::Eq(k) => count == k,
            CountCond::Ge(k) => count >= k,
        }
    }
}

/// The mask sets used by the paper's query formulations.
#[derive(Clone)]
pub enum MaskSpec {
    /// `{ s | s[0] ≠ ∅ ∧ cond(#2-primitives containing the location) }` —
    /// the point-selection masks `Mp` / `Mp'` (Sections 4.1, 5.1).
    /// Boundary pixels are refined per exact point location.
    PointInAreas(CountCond),
    /// `{ s | cond(s[2].v1) }` — the polygon-overlap mask `My`
    /// (Section 4.1). Coarse (texel-level); record-level exact
    /// refinement is done by the polygon-selection query.
    AreaCount(CountCond),
    /// Arbitrary texel predicate (no refinement) for custom queries;
    /// the string names the condition in plan diagrams.
    Texel(
        &'static str,
        std::sync::Arc<dyn Fn(&Texel) -> bool + Send + Sync>,
    ),
}

impl std::fmt::Debug for MaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskSpec::PointInAreas(c) => write!(f, "PointInAreas({c:?})"),
            MaskSpec::AreaCount(c) => write!(f, "AreaCount({c:?})"),
            MaskSpec::Texel(name, _) => write!(f, "Texel({name})"),
        }
    }
}

impl MaskSpec {
    /// Short label for plan diagrams.
    pub fn label(&self) -> String {
        match self {
            MaskSpec::PointInAreas(CountCond::Eq(k)) => format!("Mp[#areas={k}]"),
            MaskSpec::PointInAreas(CountCond::Ge(k)) => format!("Mp'[#areas>={k}]"),
            MaskSpec::AreaCount(CountCond::Eq(k)) => format!("My[count={k}]"),
            MaskSpec::AreaCount(CountCond::Ge(k)) => format!("My[count>={k}]"),
            MaskSpec::Texel(name, _) => format!("M[{name}]"),
        }
    }
}

/// `C' = M[M](C)` — keeps pixels satisfying the mask, nulls the rest,
/// refining boundary pixels exactly (see module docs).
pub fn mask(dev: &mut Device, c: &Canvas, spec: &MaskSpec) -> Canvas {
    match spec {
        MaskSpec::PointInAreas(cond) => mask_point_in_areas(dev, c, *cond),
        MaskSpec::AreaCount(cond) => {
            let cond = *cond;
            mask_texel(dev, c, move |t| {
                t.get(2).map(|a| cond.eval(a.v1 as u32)).unwrap_or(false)
            })
        }
        MaskSpec::Texel(_, f) => {
            let f = f.clone();
            mask_texel(dev, c, move |t| f(t))
        }
    }
}

/// Coarse texel-level mask (full-screen pass, band-parallel over the
/// texel + cover planes).
fn mask_texel(dev: &mut Device, c: &Canvas, pred: impl Fn(&Texel) -> bool + Sync) -> Canvas {
    let mut out = c.clone();
    {
        let (texels, cover, _) = out.planes_mut();
        dev.pipeline()
            .map_planes_inplace(texels, cover, |_, _, t, cov| {
                if !t.is_null() && !pred(t) {
                    *t = Texel::null();
                    *cov = 0;
                }
            });
    }
    prune_boundary(&mut out);
    out
}

/// The point-selection mask with exact refinement, band-parallel over
/// the split texel + cover planes: every band runs the per-pixel test
/// (and the exact boundary refinement where needed) independently,
/// collecting its surviving point entries locally; bands concatenate in
/// row-major order, so the result is identical at any thread count.
fn mask_point_in_areas(dev: &mut Device, c: &Canvas, cond: CountCond) -> Canvas {
    let mut out = c.clone();
    let kept_points: Vec<crate::boundary::PointEntry> = {
        let (texels, cover, _) = out.planes_mut();
        let width = c.viewport().width();
        dev.pipeline()
            .map_planes(texels, cover, |x, y, t, cov, kept| {
                if t.is_null() {
                    return;
                }
                let pixel = y * width + x;
                if !t.has(0) {
                    // No point here: the selection result only keeps
                    // intersection pixels.
                    *cov = 0;
                    *t = Texel::null();
                    return;
                }
                let boundary_areas = c.boundary().areas_at(pixel);
                if boundary_areas.is_empty() {
                    // Uniform pixel: the certain-cover count is the exact
                    // polygon incidence for every location in the pixel.
                    let count = *cov as u32;
                    if cond.eval(count) {
                        kept.extend_from_slice(c.boundary().points_at(pixel));
                    } else {
                        *cov = 0;
                        *t = Texel::null();
                    }
                } else {
                    // Boundary pixel: refine each exact point location
                    // against the vector polygons (paper Section 5).
                    let mut count_kept = 0u32;
                    let mut weight_sum = 0.0f32;
                    for e in c.boundary().points_at(pixel) {
                        let exact = c.exact_area_count(pixel, e.loc);
                        if cond.eval(exact) {
                            kept.push(*e);
                            count_kept += 1;
                            weight_sum += e.weight;
                        }
                    }
                    if count_kept == 0 {
                        *cov = 0;
                        *t = Texel::null();
                    } else {
                        // Rewrite s[0] with the refined count / weight sum so
                        // downstream aggregation scatters stay exact.
                        let mut info = t.get(0).expect("checked above");
                        info.v1 = count_kept as f32;
                        info.v2 = weight_sum;
                        t.set(0, info);
                    }
                }
            })
    };
    // Replace point entries with the refined set (already pixel-ordered
    // because bands concatenate row-major) and drop boundary entries of
    // nulled pixels.
    let texels = out.texels().clone();
    let width = texels.width();
    {
        let b = out.boundary_mut();
        b.retain_points(|_| false);
        for e in kept_points {
            b.push_point(e);
        }
        b.retain_pixels(|pixel| {
            let x = pixel % width;
            let y = pixel / width;
            !texels.get(x, y).is_null()
        });
        b.sort();
    }
    out
}

/// Drops boundary entries whose pixels were nulled by a coarse mask.
fn prune_boundary(out: &mut Canvas) {
    let texels = out.texels().clone();
    let width = texels.width();
    let b = out.boundary_mut();
    b.retain_pixels(|pixel| {
        let x = pixel % width;
        let y = pixel / width;
        !texels.get(x, y).is_null()
    });
    b.sort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::info::BlendFn;
    use crate::ops::blend::blend;
    use crate::source::{render_points, render_query_polygon};
    use canvas_geom::{BBox, Point, Polygon};
    use canvas_raster::Viewport;

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            n,
            n,
        )
    }

    fn diamond() -> Polygon {
        Polygon::simple(vec![
            Point::new(5.0, 1.0),
            Point::new(9.0, 5.0),
            Point::new(5.0, 9.0),
            Point::new(1.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn selection_mask_keeps_inside_points_exactly() {
        // Coarse 10x10 grid: many pixels straddle the diamond's edges,
        // so correctness here depends on exact refinement.
        let mut dev = Device::nvidia();
        let pts = vec![
            Point::new(5.0, 5.0), // center: inside
            Point::new(1.2, 1.2), // corner: outside (same pixel as edge)
            Point::new(4.9, 1.4), // just inside the bottom tip region
            Point::new(0.2, 0.2), // far outside
        ];
        let diamond = diamond();
        let expected: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| diamond.contains_closed(**p))
            .map(|(i, _)| i as u32)
            .collect();
        let cp = render_points(&mut dev, vp(10), &PointBatch::from_points(pts));
        let cq = render_query_polygon(&mut dev, vp(10), diamond, 1);
        let merged = blend(&mut dev, &cp, &cq, BlendFn::PointOverArea);
        let result = mask(&mut dev, &merged, &MaskSpec::PointInAreas(CountCond::Ge(1)));
        assert_eq!(result.point_records(), expected);
    }

    #[test]
    fn refined_texel_counts_updated() {
        // Two points share a boundary pixel; one inside, one outside.
        let mut dev = Device::nvidia();
        let tri = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(9.0, 0.0),
            Point::new(0.0, 9.0),
        ])
        .unwrap();
        // On an 8x8 grid over [0,10]² pixel (3,3) spans [3.75,5)²; the
        // hypotenuse x+y=9 crosses it, so one point on each side of the
        // line shares the pixel.
        let inside = Point::new(4.0, 4.0); // 8.0 < 9 inside
        let outside = Point::new(4.8, 4.8); // 9.6 > 9 outside
        let cp = render_points(
            &mut dev,
            vp(8),
            &PointBatch::from_points(vec![inside, outside]),
        );
        // Same pixel?
        let pix_a = vp(8).world_to_pixel(inside).unwrap();
        let pix_b = vp(8).world_to_pixel(outside).unwrap();
        assert_eq!(pix_a, pix_b, "test points must share a pixel");
        let cq = render_query_polygon(&mut dev, vp(8), tri, 1);
        let merged = blend(&mut dev, &cp, &cq, BlendFn::PointOverArea);
        let result = mask(&mut dev, &merged, &MaskSpec::PointInAreas(CountCond::Ge(1)));
        assert_eq!(result.point_records(), vec![0]);
        let t = result.texel(pix_a.0, pix_a.1);
        assert_eq!(t.get(0).unwrap().v1, 1.0, "count refined from 2 to 1");
    }

    #[test]
    fn area_count_mask_coarse() {
        let mut dev = Device::nvidia();
        let a = render_query_polygon(
            &mut dev,
            vp(20),
            Polygon::simple(vec![
                Point::new(1.0, 1.0),
                Point::new(6.0, 1.0),
                Point::new(6.0, 6.0),
                Point::new(1.0, 6.0),
            ])
            .unwrap(),
            7,
        );
        let b = render_query_polygon(
            &mut dev,
            vp(20),
            Polygon::simple(vec![
                Point::new(4.0, 4.0),
                Point::new(9.0, 4.0),
                Point::new(9.0, 9.0),
                Point::new(4.0, 9.0),
            ])
            .unwrap(),
            1,
        );
        let m = blend(&mut dev, &a, &b, BlendFn::AreaCount);
        let sel = mask(&mut dev, &m, &MaskSpec::AreaCount(CountCond::Eq(2)));
        assert!(!sel.is_empty());
        // Every surviving texel has count 2.
        for (_, _, t) in sel.non_null() {
            assert_eq!(t.get(2).unwrap().v1, 2.0);
        }
        // Non-overlap region nulled.
        assert!(sel.texel(3, 3).is_null()); // world (1.75,1.75): only a
    }

    #[test]
    fn custom_texel_mask() {
        let mut dev = Device::nvidia();
        let cp = render_points(
            &mut dev,
            vp(10),
            &PointBatch::from_points(vec![Point::new(1.5, 1.5), Point::new(7.5, 7.5)]),
        );
        let spec = MaskSpec::Texel(
            "id==1",
            std::sync::Arc::new(|t: &Texel| t.get(0).map(|p| p.id == 1).unwrap_or(false)),
        );
        let out = mask(&mut dev, &cp, &spec);
        assert_eq!(out.non_null_count(), 1);
        assert!(out.texel(7, 7).has(0));
        // Boundary entries of dropped pixels pruned.
        assert_eq!(out.boundary().num_points(), 1);
    }

    #[test]
    fn mask_labels() {
        assert_eq!(
            MaskSpec::PointInAreas(CountCond::Ge(1)).label(),
            "Mp'[#areas>=1]"
        );
        assert_eq!(MaskSpec::AreaCount(CountCond::Eq(2)).label(), "My[count=2]");
    }

    #[test]
    fn count_cond_eval() {
        assert!(CountCond::Eq(2).eval(2));
        assert!(!CountCond::Eq(2).eval(1));
        assert!(CountCond::Ge(1).eval(3));
        assert!(!CountCond::Ge(2).eval(1));
    }

    #[test]
    fn mask_on_empty_canvas_is_empty() {
        let mut dev = Device::nvidia();
        let c = Canvas::empty(vp(10));
        let out = mask(&mut dev, &c, &MaskSpec::PointInAreas(CountCond::Ge(1)));
        assert!(out.is_empty());
    }
}
