//! Utility operators: parametric canvas generators (paper Section 3.3).
//!
//! * `Circ[(x,y), r]()` — circle canvas (distance constraints),
//! * `Rect[l₁, l₂]()` — rectangle canvas (range constraints),
//! * `HS[a, b, c]()` — half-space `ax + by + c < 0` canvas (one-sided
//!   range constraints).
//!
//! Each generates a polygon, renders it with the query-constraint texel
//! encoding `s[2] = (id, 1, 0)` (Section 4.1), and keeps the vector shape
//! behind the boundary index so masks stay exact. Circles are rendered as
//! high-segment-count polygons — the same thing the paper's OpenGL
//! prototype does.

use crate::canvas::Canvas;
use crate::device::Device;
use crate::source::render_query_polygon;
use canvas_geom::clip::clip_ring_halfplane;
use canvas_geom::polygon::Polygon;
use canvas_geom::{BBox, Point};
use canvas_raster::Viewport;

/// Default tessellation for circle canvases. 128 segments keeps radial
/// error below 0.03% of the radius — far below pixel resolution — while
/// the exact-refinement layer removes even that (matching the paper's
/// exactness claims for distance selections).
pub const CIRCLE_SEGMENTS: usize = 128;

/// `C = Circ[(x,y), r]()` — canvas of the disc centered at `center`.
pub fn circle_canvas(
    dev: &mut Device,
    vp: Viewport,
    center: Point,
    radius: f64,
    id: u32,
) -> Canvas {
    circle_canvas_with_segments(dev, vp, center, radius, id, CIRCLE_SEGMENTS)
}

/// [`circle_canvas`] with explicit tessellation (resolution ablations).
pub fn circle_canvas_with_segments(
    dev: &mut Device,
    vp: Viewport,
    center: Point,
    radius: f64,
    id: u32,
    segments: usize,
) -> Canvas {
    assert!(radius > 0.0, "circle radius must be positive");
    let poly = Polygon::circle(center, radius, segments);
    render_query_polygon(dev, vp, poly, id)
}

/// `C = Rect[l₁, l₂]()` — canvas of the axis-aligned rectangle with the
/// given diagonal endpoints.
pub fn rect_canvas(dev: &mut Device, vp: Viewport, l1: Point, l2: Point, id: u32) -> Canvas {
    let b = BBox::from_corners(l1, l2);
    if b.is_empty() || b.area() == 0.0 {
        return Canvas::empty(vp);
    }
    render_query_polygon(dev, vp, Polygon::rect(&b), id)
}

/// `C = HS[a, b, c]()` — canvas of the half-space `ax + by + c < 0`,
/// materialized as the viewport extent clipped by the directed line (a
/// half-space drawn onto a finite canvas is exactly that intersection).
pub fn halfspace_canvas(dev: &mut Device, vp: Viewport, a: f64, b: f64, c: f64, id: u32) -> Canvas {
    let extent_ring = vp.world().corners().to_vec();
    let clipped = clip_ring_halfplane(&extent_ring, a, b, c);
    match Polygon::simple(clipped) {
        Ok(poly) => render_query_polygon(dev, vp, poly, id),
        Err(_) => Canvas::empty(vp), // half-space misses the viewport
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            20,
            20,
        )
    }

    #[test]
    fn circle_canvas_covers_disc() {
        let mut dev = Device::nvidia();
        let c = circle_canvas(&mut dev, vp(), Point::new(5.0, 5.0), 3.0, 1);
        // Center pixel inside.
        assert!(c.value_at(Point::new(5.0, 5.0)).has(2));
        // Outside the disc.
        assert!(c.value_at(Point::new(9.5, 9.5)).is_null());
        // Exact refinement data present.
        assert!(c.boundary().num_areas() > 0);
        assert_eq!(c.area_sources().len(), 1);
    }

    #[test]
    fn rect_canvas_covers_box() {
        let mut dev = Device::nvidia();
        let c = rect_canvas(
            &mut dev,
            vp(),
            Point::new(6.0, 2.0),
            Point::new(2.0, 6.0),
            1,
        );
        assert!(c.value_at(Point::new(4.0, 4.0)).has(2));
        assert!(c.value_at(Point::new(8.0, 8.0)).is_null());
        let t = c.value_at(Point::new(4.0, 4.0));
        assert_eq!(t.get(2).unwrap().id, 1);
    }

    #[test]
    fn degenerate_rect_is_empty() {
        let mut dev = Device::nvidia();
        let c = rect_canvas(
            &mut dev,
            vp(),
            Point::new(3.0, 3.0),
            Point::new(3.0, 8.0),
            1,
        );
        assert!(c.is_empty());
    }

    #[test]
    fn halfspace_covers_half() {
        let mut dev = Device::nvidia();
        // x - 5 < 0: left half.
        let c = halfspace_canvas(&mut dev, vp(), 1.0, 0.0, -5.0, 1);
        assert!(c.value_at(Point::new(2.0, 5.0)).has(2));
        assert!(c.value_at(Point::new(8.0, 5.0)).is_null());
    }

    #[test]
    fn halfspace_diagonal() {
        let mut dev = Device::nvidia();
        // x + y - 10 < 0: below the anti-diagonal.
        let c = halfspace_canvas(&mut dev, vp(), 1.0, 1.0, -10.0, 1);
        assert!(c.value_at(Point::new(2.0, 2.0)).has(2));
        assert!(c.value_at(Point::new(8.0, 8.0)).is_null());
    }

    #[test]
    fn halfspace_missing_viewport_is_empty() {
        let mut dev = Device::nvidia();
        // x + 100 < 0 never holds in [0,10]².
        let c = halfspace_canvas(&mut dev, vp(), 1.0, 0.0, 100.0, 1);
        assert!(c.is_empty());
        // And the complement covers everything.
        let full = halfspace_canvas(&mut dev, vp(), 1.0, 0.0, -100.0, 1);
        assert_eq!(full.non_null_count(), 400);
    }

    #[test]
    fn circle_area_close_to_analytic() {
        let mut dev = Device::nvidia();
        let c = circle_canvas(&mut dev, vp(), Point::new(5.0, 5.0), 4.0, 1);
        // Count certainly + boundary covered pixels; at 0.5 world units
        // per pixel the disc area (~50.3) is ~201 pixels.
        let covered = c.non_null_count() as f64;
        let expected = std::f64::consts::PI * 16.0 / (0.5 * 0.5);
        assert!(
            (covered - expected).abs() / expected < 0.15,
            "covered {covered}, expected ≈{expected}"
        );
    }
}
