//! The canvas algebra operators (paper Section 3).
//!
//! * fundamental: [`transform::transform_positions`] /
//!   [`transform::transform_by_value`] (`G[γ]`),
//!   [`value::value_transform`] (`V[f]`), [`mask::mask`] (`M[M]`),
//!   [`blend::blend`] (`B[⊙]`), [`dissect::dissect`] (`D`),
//! * derived: [`blend::multiway_blend`] (`B*[⊙]`),
//!   [`dissect::map_scatter`] (`D*[γ]`),
//! * utility: [`utility::circle_canvas`] (`Circ`),
//!   [`utility::rect_canvas`] (`Rect`),
//!   [`utility::halfspace_canvas`] (`HS`).
//!
//! Every operator consumes and produces canvases — the algebra is closed
//! by construction, which is what lets Section 4's query expressions
//! compose.

pub mod blend;
pub mod chain;
pub mod dissect;
pub mod mask;
pub mod transform;
pub mod utility;
pub mod value;

pub use blend::{blend, multiway_blend};
pub use chain::{
    run_points_chain, run_points_chain_materialized, run_polygons_chain,
    run_polygons_chain_materialized, CanvasChain, CanvasOp, ChainOutcome,
};
pub use dissect::{dissect, dissect_iter, dissect_par, map_scatter};
pub use mask::{mask, CountCond, MaskSpec};
pub use transform::{
    group_viewport, transform_by_value, transform_positions, PositionMap, ValueMap,
};
pub use utility::{circle_canvas, circle_canvas_with_segments, halfspace_canvas, rect_canvas};
pub use value::value_transform;
