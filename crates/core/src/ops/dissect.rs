//! The Dissect operator `D(C)` and the derived Map `D*[γ]` (paper
//! Sections 3.1, 3.2).
//!
//! Dissect splits a canvas into one canvas per non-∅ location. The
//! literal semantics materializes enormous numbers of single-pixel
//! canvases, so it is exposed two ways:
//!
//! * [`dissect_iter`] — a lazy iterator over the single-pixel canvases
//!   (the definitional form, fine for tests and small canvases),
//! * the fused `Map = G[γ] ∘ D` — which is what query plans actually
//!   use — implemented as a single scatter pass in
//!   [`transform_by_value`] —
//!   [`map_scatter`] is the named alias.

use crate::canvas::Canvas;
use crate::device::Device;
use crate::info::BlendFn;
use crate::ops::transform::{transform_by_value, ValueMap};
use canvas_raster::Viewport;

/// Lazy `{C₁ … Cₙ} = D(C)`: one single-pixel canvas per non-∅ location.
pub fn dissect_iter<'a>(c: &'a Canvas) -> impl Iterator<Item = Canvas> + 'a {
    let vp = *c.viewport();
    c.non_null()
        .map(move |(x, y, t)| Canvas::single_pixel(vp, x, y, t))
}

/// Materialized dissect (small canvases only — the iterator form and the
/// fused map are what production plans use).
pub fn dissect(c: &Canvas) -> Vec<Canvas> {
    dissect_iter(c).collect()
}

/// Pool-parallel materialized dissect: the non-∅ locations are listed
/// once, then the single-pixel canvases are built across the device's
/// worker pool with results returned **in location (row-major) order**
/// — exactly the order [`dissect`] produces, at any thread count.
///
/// Takes `&Device` (it only borrows the pool) and, like [`dissect`],
/// is a host-side materialization: it counts no pipeline work, because
/// the definitional dissect has no GPU analogue — production plans use
/// the fused [`map_scatter`] instead, which is fully counted.
pub fn dissect_par(dev: &Device, c: &Canvas) -> Vec<Canvas> {
    let vp = *c.viewport();
    let items: Vec<(u32, u32, crate::info::Texel)> = c.non_null().collect();
    dev.pool().run_indexed(items.len(), |i| {
        let (x, y, t) = items[i];
        Canvas::single_pixel(vp, x, y, t)
    })
}

/// The derived Map operator `D*[γ] = G[γ](D(C))` (Section 3.2), fused
/// into one scatter pass: conceptually each non-∅ location becomes its
/// own canvas and is then moved by γ; operationally every texel scatters
/// to `γ(value)` with `combine` resolving collisions.
pub fn map_scatter(
    dev: &mut Device,
    c: &Canvas,
    gamma: &ValueMap,
    target_vp: Viewport,
    combine: BlendFn,
) -> Canvas {
    transform_by_value(dev, c, gamma, target_vp, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::source::render_points;
    use canvas_geom::{BBox, Point};

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn dissect_figure_4e() {
        // Figure 4(e): a canvas with 4 points splits into 4 canvases.
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![
                Point::new(1.5, 1.5),
                Point::new(3.5, 7.5),
                Point::new(6.5, 2.5),
                Point::new(8.5, 8.5),
            ]),
        );
        let parts = dissect(&c);
        assert_eq!(parts.len(), 4);
        for part in &parts {
            assert_eq!(part.non_null_count(), 1);
        }
        // Union of parts reproduces the original support.
        let mut total = 0;
        for part in &parts {
            for (x, y, t) in part.non_null() {
                assert_eq!(c.texel(x, y), t);
                total += 1;
            }
        }
        assert_eq!(total, c.non_null_count());
    }

    #[test]
    fn dissect_empty_yields_nothing() {
        let c = Canvas::empty(vp());
        assert_eq!(dissect(&c).len(), 0);
    }

    #[test]
    fn dissect_par_matches_sequential() {
        let mut dev = Device::cpu();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![
                Point::new(1.5, 1.5),
                Point::new(3.5, 7.5),
                Point::new(6.5, 2.5),
            ]),
        );
        let seq = dissect(&c);
        for threads in [1usize, 4] {
            let pdev = Device::cpu_parallel(threads);
            let par = dissect_par(&pdev, &c);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.texels(), b.texels(), "threads={threads}");
            }
        }
    }

    #[test]
    fn map_aligns_canvases() {
        // Section 3.2: map with a constant γ aligns all dissected
        // canvases at one location.
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(1.5, 1.5), Point::new(8.5, 8.5)]),
        );
        let out = map_scatter(
            &mut dev,
            &c,
            &ValueMap::to_constant(Point::new(5.0, 5.0)),
            vp(),
            BlendFn::Accumulate,
        );
        assert_eq!(out.non_null_count(), 1);
        assert_eq!(out.texel(5, 5).get(0).unwrap().v1, 2.0);
    }

    #[test]
    fn fused_map_equals_dissect_then_scatter() {
        // The fusion is semantically the fold of per-part scatters.
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![
                Point::new(2.5, 2.5),
                Point::new(6.5, 3.5),
                Point::new(4.5, 8.5),
            ]),
        );
        let gamma = ValueMap::to_constant(Point::new(0.5, 0.5));
        let fused = map_scatter(&mut dev, &c, &gamma, vp(), BlendFn::Accumulate);

        let mut folded = Canvas::empty(vp());
        for part in dissect_iter(&c) {
            let moved = map_scatter(&mut dev, &part, &gamma, vp(), BlendFn::Accumulate);
            folded = crate::ops::blend::blend(&mut dev, &folded, &moved, BlendFn::Accumulate);
        }
        assert_eq!(
            fused.texel(0, 0).get(0).unwrap().v1,
            folded.texel(0, 0).get(0).unwrap().v1
        );
    }
}
