//! The Value Transform operator `V[f](C)` (paper Section 3.1).
//!
//! `C'(x, y) = f(x, y, C(x, y))` — a full-screen pass that rewrites the
//! information stored at each location based on the location and/or the
//! current value. The Voronoi stored procedure (Section 4.5) is built
//! entirely from this operator.

use crate::canvas::Canvas;
use crate::device::Device;
use crate::info::Texel;
use canvas_geom::Point;

/// `C' = V[f](C)`. The function receives the *world* coordinates of each
/// location (pixel center under discretization) and its current value.
///
/// Executes as a band-parallel full-screen pass on the device's worker
/// pool (per-texel rewrites are independent, so the decomposition
/// cannot change the result — bit-identical at any thread count). Small
/// planes run inline under the executor's minimum-work policy.
pub fn value_transform(
    dev: &mut Device,
    c: &Canvas,
    f: impl Fn(Point, Texel) -> Texel + Sync,
) -> Canvas {
    let mut out = c.clone();
    let vp = *c.viewport();
    {
        let (texels, _, _) = out.planes_mut();
        dev.pipeline()
            .par_map_texels(texels, |x, y, t| f(vp.pixel_center(x, y), t));
    }
    out
}

/// `C' = V[f](C)` for a built-in transform: the same full-screen pass
/// (identical work counters) running the dispatched row kernel of
/// `canvas_raster::simd` instead of a per-texel closure. Built-in
/// transforms are location-independent, so no pixel-center plumbing.
pub fn value_transform_tagged(
    dev: &mut Device,
    c: &Canvas,
    tag: canvas_raster::ValueTag,
) -> Canvas {
    let mut out = c.clone();
    {
        let (texels, _, _) = out.planes_mut();
        dev.pipeline().par_map_texels_tagged(texels, tag);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::info::DimInfo;
    use crate::source::render_points;
    use canvas_geom::BBox;
    use canvas_raster::Viewport;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn recolors_values_figure_4b() {
        // Figure 4(b): change stored information (the "color") without
        // moving geometry.
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(2.5, 2.5)]),
        );
        let out = value_transform(&mut dev, &c, |_, mut t| {
            if let Some(mut p) = t.get(0) {
                p.v2 = 42.0;
                t.set(0, p);
            }
            t
        });
        assert_eq!(out.texel(2, 2).get(0).unwrap().v2, 42.0);
        // Geometry (non-null support) unchanged.
        assert_eq!(out.non_null_count(), c.non_null_count());
    }

    #[test]
    fn location_dependent_transform() {
        // Fill every location with its distance to the origin — the
        // Voronoi building block.
        let mut dev = Device::nvidia();
        let c = Canvas::empty(vp());
        let out = value_transform(&mut dev, &c, |p, _| Texel::area(0, p.norm_sq() as f32, 0.0));
        let d_near = out.texel(0, 0).get(2).unwrap().v1;
        let d_far = out.texel(9, 9).get(2).unwrap().v1;
        assert!(d_near < d_far);
        assert_eq!(d_near, (0.5f32 * 0.5 + 0.5 * 0.5));
    }

    #[test]
    fn identity_transform_preserves_canvas() {
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(4.5, 7.5)]),
        );
        let out = value_transform(&mut dev, &c, |_, t| t);
        assert_eq!(out.texels(), c.texels());
        let _ = DimInfo::default();
    }

    #[test]
    fn counts_one_fullscreen_pass() {
        let mut dev = Device::nvidia();
        let c = Canvas::empty(vp());
        let before = dev.stats().fullscreen_texels;
        let _ = value_transform(&mut dev, &c, |_, t| t);
        assert_eq!(dev.stats().fullscreen_texels - before, 100);
    }
}
