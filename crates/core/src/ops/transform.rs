//! The Geometric Transform operator `G[γ](C)` (paper Section 3.1).
//!
//! The parameter function γ comes in two shapes:
//!
//! 1. **Position form** `γ : R² → R²` — the geometry moves to a new
//!    position computed from its current position (rotation, translation,
//!    coordinate-system conversion). We re-render the canvas's *vector*
//!    data through γ, which keeps the result exact (the hybrid index
//!    stores the vector geometry precisely for purposes like this).
//! 2. **Value form** `γ : S³ → R²` — the new position is computed from
//!    the *information stored* at a location (e.g. move everything with
//!    the same id to one spot for aggregation). This lowers to a scatter
//!    pass with a programmable combine blend.

use std::sync::Arc;

use crate::canvas::Canvas;
use crate::device::Device;
use crate::info::{BlendFn, Texel};
use crate::source;
use canvas_geom::polygon::Polygon;
use canvas_geom::{Point, Polyline};
use canvas_raster::Viewport;

/// Position-form γ: affine-style world→world maps (exact re-render).
#[derive(Clone)]
pub enum PositionMap {
    Translate(Point),
    RotateAround {
        center: Point,
        angle: f64,
    },
    ScaleAround {
        center: Point,
        factor: f64,
    },
    /// Arbitrary map (must be injective on the data for Definition-
    /// faithful semantics).
    Custom(Arc<dyn Fn(Point) -> Point + Send + Sync>),
}

impl PositionMap {
    pub fn apply(&self, p: Point) -> Point {
        match self {
            PositionMap::Translate(d) => p + *d,
            PositionMap::RotateAround { center, angle } => (p - *center).rotated(*angle) + *center,
            PositionMap::ScaleAround { center, factor } => (p - *center) * *factor + *center,
            PositionMap::Custom(f) => f(p),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            PositionMap::Translate(_) => "translate",
            PositionMap::RotateAround { .. } => "rotate",
            PositionMap::ScaleAround { .. } => "scale",
            PositionMap::Custom(_) => "custom",
        }
    }
}

impl std::fmt::Debug for PositionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PositionMap::{}", self.label())
    }
}

/// `C' = G[γ](C)` with position-form γ: every geometric object moves to
/// γ(current position). The canvas's vector data (exact point locations,
/// polygon/line source tables) is transformed and re-rendered with the
/// standard texel encodings, so the output is exact.
pub fn transform_positions(
    dev: &mut Device,
    c: &Canvas,
    gamma: &PositionMap,
    target_vp: Viewport,
) -> Canvas {
    let mut out = Canvas::empty(target_vp);

    // 0-primitives: transform the exact stored locations.
    let entries = c.boundary().points();
    if !entries.is_empty() {
        let batch = crate::canvas::PointBatch {
            points: entries.iter().map(|e| gamma.apply(e.loc)).collect(),
            ids: entries.iter().map(|e| e.record).collect(),
            weights: entries.iter().map(|e| e.weight).collect(),
        };
        let moved = source::render_points(dev, target_vp, &batch);
        out = crate::ops::blend::blend(dev, &out, &moved, BlendFn::Over);
    }

    // 2-primitives: transform the vector polygons and re-render.
    for table in c.area_sources() {
        let transformed: Vec<Polygon> = table
            .iter()
            .filter_map(|poly| transform_polygon(poly, gamma))
            .collect();
        if transformed.is_empty() {
            continue;
        }
        let new_table: crate::canvas::AreaSource = Arc::new(transformed);
        let rendered = source::render_polygon_set(dev, target_vp, &new_table, BlendFn::AreaCount);
        out = crate::ops::blend::blend(dev, &out, &rendered, BlendFn::Over);
    }

    // 1-primitives: transform polylines and re-render.
    for table in c.line_sources() {
        let transformed: Vec<Polyline> = table
            .iter()
            .filter_map(|line| {
                Polyline::new(line.vertices().iter().map(|v| gamma.apply(*v)).collect())
            })
            .collect();
        if transformed.is_empty() {
            continue;
        }
        let new_table: crate::canvas::LineSource = Arc::new(transformed);
        let rendered = source::render_polylines(dev, target_vp, &new_table);
        out = crate::ops::blend::blend(dev, &out, &rendered, BlendFn::Over);
    }

    out
}

fn transform_polygon(poly: &Polygon, gamma: &PositionMap) -> Option<Polygon> {
    let map_ring = |r: &canvas_geom::Ring| {
        canvas_geom::Ring::new(r.vertices().iter().map(|v| gamma.apply(*v)).collect()).ok()
    };
    let outer = map_ring(poly.outer())?;
    let holes: Vec<_> = poly.holes().iter().filter_map(map_ring).collect();
    Some(Polygon::new(outer, holes))
}

/// Shared texel→target function of a [`ValueMap`].
pub type ValueMapFn = Arc<dyn Fn(&Texel) -> Option<Point> + Send + Sync>;

/// Value-form γ: computes a target location from a texel (`None` drops
/// the texel, mirroring ∅ handling).
#[derive(Clone)]
pub struct ValueMap {
    pub name: &'static str,
    pub f: ValueMapFn,
}

impl ValueMap {
    /// The aggregation map `γc(s) = (s[2][0], 0)` of Section 4.3: send
    /// each result to the slot of the polygon that contained it. Targets
    /// are laid out in *group space* (see [`group_viewport`]).
    pub fn area_id_slot() -> Self {
        ValueMap {
            name: "γc: s[2].id → slot",
            f: Arc::new(|t: &Texel| t.get(2).map(|a| Point::new(a.id as f64 + 0.5, 0.5))),
        }
    }

    /// The constant map `γ0(s) = (x, y)` (used by kNN's final collapse
    /// and by Map-alignment, Section 3.2).
    pub fn to_constant(target: Point) -> Self {
        ValueMap {
            name: "γ0: const",
            f: Arc::new(move |t: &Texel| if t.is_null() { None } else { Some(target) }),
        }
    }

    /// The origin→destination map `γd(s) = destination(s[0][0])` of
    /// Section 4.6: look the record's other spatial attribute up by id.
    pub fn point_id_lookup(name: &'static str, table: Arc<Vec<Point>>) -> Self {
        ValueMap {
            name,
            f: Arc::new(move |t: &Texel| t.get(0).map(|p| table[p.id as usize])),
        }
    }
}

impl std::fmt::Debug for ValueMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ValueMap({})", self.name)
    }
}

/// A 1-D "group space" viewport with one pixel per group id — the target
/// space for aggregation scatters (`γc`).
pub fn group_viewport(num_groups: u32) -> Viewport {
    Viewport::new(
        canvas_geom::BBox::new(
            Point::new(0.0, 0.0),
            Point::new(num_groups.max(1) as f64, 1.0),
        ),
        num_groups.max(1),
        1,
    )
}

/// `C' = G[γ](C)` with value-form γ: a scatter pass. Texels move to
/// `γ(value)` in the target viewport and collisions are resolved by
/// `combine` (the aggregation plans use [`BlendFn::Accumulate`]).
///
/// Runs as a pool-parallel scatter: workers evaluate γ over source
/// bands while the calling thread applies the collision blends in
/// source row-major order — the exact order of the sequential scatter,
/// so the result is bit-identical at any thread count.
pub fn transform_by_value(
    dev: &mut Device,
    c: &Canvas,
    gamma: &ValueMap,
    target_vp: Viewport,
    combine: BlendFn,
) -> Canvas {
    let mut out = Canvas::empty(target_vp);
    {
        let (texels, _, _) = out.planes_mut();
        let f = &gamma.f;
        dev.pipeline().scatter_shared(
            c.texels(),
            &target_vp,
            texels,
            |_, _, t| if t.is_null() { None } else { f(t) },
            |d, s| combine.apply(d, s),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::source::{render_points, render_query_polygon};
    use canvas_geom::BBox;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn translate_points_exact() {
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(1.5, 1.5)]),
        );
        let out = transform_positions(
            &mut dev,
            &c,
            &PositionMap::Translate(Point::new(3.0, 4.0)),
            vp(),
        );
        assert!(out.texel(4, 5).has(0));
        assert!(out.texel(1, 1).is_null());
        // Exact location moved too.
        let e = out.boundary().points()[0];
        assert_eq!(e.loc, Point::new(4.5, 5.5));
    }

    #[test]
    fn rotate_polygon_rerenders() {
        // Figure 4(a): rotate + translate a polygon to a new position.
        let mut dev = Device::nvidia();
        let tri = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 4.0),
        ])
        .unwrap();
        let c = render_query_polygon(&mut dev, vp(), tri, 1);
        let out = transform_positions(
            &mut dev,
            &c,
            &PositionMap::RotateAround {
                center: Point::new(5.0, 5.0),
                angle: std::f64::consts::PI,
            },
            vp(),
        );
        // The triangle now occupies the opposite corner.
        assert!(out.texel(8, 8).has(2));
        assert!(out.texel(1, 1).is_null());
        // Output still has exact vector data (closure under exactness).
        assert_eq!(out.area_sources().len(), 1);
        assert!(out.boundary().num_areas() > 0);
    }

    #[test]
    fn transform_out_of_viewport_prunes() {
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(5.0, 5.0)]),
        );
        let out = transform_positions(
            &mut dev,
            &c,
            &PositionMap::Translate(Point::new(100.0, 0.0)),
            vp(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn scale_around_center() {
        let m = PositionMap::ScaleAround {
            center: Point::new(5.0, 5.0),
            factor: 2.0,
        };
        assert_eq!(m.apply(Point::new(6.0, 5.0)), Point::new(7.0, 5.0));
        assert_eq!(m.apply(Point::new(5.0, 5.0)), Point::new(5.0, 5.0));
    }

    #[test]
    fn value_scatter_accumulates_by_area_id() {
        // Three texels tagged with polygon ids 0, 2, 2 scatter into group
        // slots; counts accumulate per slot.
        let mut dev = Device::nvidia();
        let mut c = Canvas::empty(vp());
        let mk = |area_id: u32, count: f32| {
            let mut t = Texel::point(9, count, 0.0);
            t.set(2, crate::info::DimInfo::new(area_id, 1.0, 0.0));
            t
        };
        c.texels_mut().set(1, 1, mk(0, 2.0));
        c.texels_mut().set(5, 5, mk(2, 3.0));
        c.texels_mut().set(7, 2, mk(2, 4.0));
        let gvp = group_viewport(4);
        let out = transform_by_value(
            &mut dev,
            &c,
            &ValueMap::area_id_slot(),
            gvp,
            BlendFn::Accumulate,
        );
        assert_eq!(out.texel(0, 0).get(0).unwrap().v1, 2.0);
        assert!(out.texel(1, 0).is_null());
        assert_eq!(out.texel(2, 0).get(0).unwrap().v1, 7.0);
    }

    #[test]
    fn to_constant_collapses_everything() {
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![
                Point::new(1.5, 1.5),
                Point::new(8.5, 8.5),
                Point::new(3.5, 6.5),
            ]),
        );
        let out = transform_by_value(
            &mut dev,
            &c,
            &ValueMap::to_constant(Point::new(0.5, 0.5)),
            vp(),
            BlendFn::Accumulate,
        );
        assert_eq!(out.non_null_count(), 1);
        assert_eq!(out.texel(0, 0).get(0).unwrap().v1, 3.0);
    }

    #[test]
    fn point_id_lookup_moves_by_record() {
        // The γd form of Section 4.6: each texel moves to the location
        // looked up by its record id.
        let mut dev = Device::nvidia();
        let c = render_points(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![Point::new(1.5, 1.5), Point::new(3.5, 3.5)]),
        );
        let destinations = std::sync::Arc::new(vec![
            Point::new(8.5, 8.5), // destination of record 0
            Point::new(0.5, 8.5), // destination of record 1
        ]);
        let gamma = ValueMap::point_id_lookup("γd", destinations);
        let out = transform_by_value(&mut dev, &c, &gamma, vp(), BlendFn::PointAccumulate);
        assert!(out.texel(8, 8).has(0));
        assert!(out.texel(0, 8).has(0));
        assert!(out.texel(1, 1).is_null());
        assert_eq!(out.non_null_count(), 2);
    }

    #[test]
    fn group_viewport_one_pixel_per_group() {
        let g = group_viewport(16);
        assert_eq!(g.width(), 16);
        assert_eq!(g.height(), 1);
        assert_eq!(g.world_to_pixel(Point::new(3.5, 0.5)), Some((3, 0)));
    }
}
