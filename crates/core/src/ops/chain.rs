//! Fused canvas operator chains — the algebra-level face of
//! `canvas_raster::OpChain`.
//!
//! A [`CanvasChain`] is a linear plan `render(points) → op₁ → … → opₖ`
//! over full canvases (texel plane + certain-cover plane + boundary
//! index) whose operators are the *coarse* forms of the algebra:
//! Value Transform `V[f]`, Blend `B[⊙]` against a materialized operand
//! canvas, and the texel-level Mask `M[M]`. Executed fused
//! ([`run_points_chain`]), each rendered tile flows through every
//! operator on the executor's multi-stage streaming hand-off before it
//! is blitted — the intermediate canvases of the materialized plan are
//! never allocated.
//!
//! The fused run is **bit-identical** to the materialized operator
//! sequence ([`run_points_chain_materialized`]) — texel plane, cover
//! plane, boundary index, sources, *and* pipeline work counters — at
//! any thread count; `tests/chain_equivalence.rs` asserts this on
//! random chains. Boundary bookkeeping is replayed after the planes
//! finish: Blend stages merge the operand's entries (source-remapped)
//! and Mask stages prune entries of pixels whose texel the mask left
//! null, read from the fused run's per-stage [`MaskOutcome`](canvas_raster::MaskOutcome) bitmaps —
//! sparse metadata, never a full intermediate plane.
//!
//! The exact point-refinement Mask (`MaskSpec::PointInAreas`) is *not*
//! chain-fusable: it rewrites texels from boundary-index state, which
//! is global. Queries needing it (selection) fuse the coarse prefix
//! and finish with the materialized refinement mask.
//!
//! ## Chains and subplan sharing
//!
//! Cross-query subplan sharing
//! ([`algebra::subplan`](crate::algebra::subplan)) publishes rendered
//! intermediates at cut points — but a fused chain, by design, never
//! materializes its intermediates, so there is nothing to publish
//! mid-chain and no cut point is ever placed inside one. The only
//! canvases a chain exchanges are the **operand** canvases it
//! materializes anyway (the Blend operands, e.g. the heatmap's `C_Q`
//! or the choropleth's tagged query region — see
//! `queries::heatmap::selection_heatmap_via`). Consequently the PR 3
//! streamed ≡ materialized bit-identity contract is untouched by
//! sharing: the fused tile flow is byte-for-byte the same whether an
//! operand was rendered locally or served from the exchange.

use std::sync::Arc;

use crate::canvas::{Canvas, PointBatch};
use crate::device::Device;
use crate::info::{BlendFn, Texel};
use crate::ops::mask::MaskSpec;
use canvas_geom::Point;
use canvas_raster::{MaskTag, OpChain, ValueTag, Viewport};

/// Boxed location-aware texel rewrite (the Value Transform function).
pub type ValueFn = Arc<dyn Fn(Point, Texel) -> Texel + Send + Sync>;
/// Boxed texel keep-predicate (the coarse Mask set).
pub type TexelPred = Arc<dyn Fn(&Texel) -> bool + Send + Sync>;

/// One operator of a canvas chain.
#[derive(Clone)]
pub enum CanvasOp<'a> {
    /// `V[f]` — per-location texel rewrite.
    Value(ValueFn),
    /// `V[f]` for a built-in transform — semantically a [`CanvasOp::Value`],
    /// but lowered to the dispatched SIMD row kernel instead of a
    /// per-texel closure.
    ValueTagged(ValueTag),
    /// `B[⊙]` — blend with a materialized operand canvas: texels
    /// through the blend function, covers by saturating addition,
    /// boundary entries merged with source remapping.
    Blend { other: &'a Canvas, op: BlendFn },
    /// Coarse `M[M]` — texel-level mask: failing texels nulled, cover
    /// zeroed, boundary entries of nulled pixels pruned.
    Mask {
        label: &'static str,
        pred: TexelPred,
    },
    /// Coarse `M[M]` for a built-in predicate — semantically a
    /// [`CanvasOp::Mask`], lowered to the SIMD row kernel.
    MaskTagged { label: &'static str, tag: MaskTag },
}

impl std::fmt::Debug for CanvasOp<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Tagged ops print identically to their closure forms so plan
        // strings (and the subplan-sharing cache keys derived from
        // them) are stable across the lowering choice.
        match self {
            CanvasOp::Value(_) | CanvasOp::ValueTagged(_) => write!(f, "V[f]"),
            CanvasOp::Blend { op, .. } => write!(f, "B[{op:?}]"),
            CanvasOp::Mask { label, .. } | CanvasOp::MaskTagged { label, .. } => {
                write!(f, "M[{label}]")
            }
        }
    }
}

/// A linear fused canvas plan (see module docs).
#[derive(Clone, Debug, Default)]
pub struct CanvasChain<'a> {
    ops: Vec<CanvasOp<'a>>,
}

impl<'a> CanvasChain<'a> {
    pub fn new() -> Self {
        CanvasChain { ops: Vec::new() }
    }

    /// Appends a Value Transform stage.
    pub fn value(mut self, f: impl Fn(Point, Texel) -> Texel + Send + Sync + 'static) -> Self {
        self.ops.push(CanvasOp::Value(Arc::new(f)));
        self
    }

    /// Appends a Blend stage against a materialized operand canvas.
    pub fn blend(mut self, other: &'a Canvas, op: BlendFn) -> Self {
        self.ops.push(CanvasOp::Blend { other, op });
        self
    }

    /// Appends a coarse texel-level Mask stage.
    pub fn mask(
        mut self,
        label: &'static str,
        pred: impl Fn(&Texel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.ops.push(CanvasOp::Mask {
            label,
            pred: Arc::new(pred),
        });
        self
    }

    /// Appends a built-in Value Transform stage (SIMD-lowered).
    pub fn value_tagged(mut self, tag: ValueTag) -> Self {
        self.ops.push(CanvasOp::ValueTagged(tag));
        self
    }

    /// Appends a built-in coarse Mask stage (SIMD-lowered).
    pub fn mask_tagged(mut self, label: &'static str, tag: MaskTag) -> Self {
        self.ops.push(CanvasOp::MaskTagged { label, tag });
        self
    }

    pub fn ops(&self) -> &[CanvasOp<'a>] {
        &self.ops
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Plan label, e.g. `points → B[PointOverArea] → M[inside] → V[f]`.
    pub fn plan(&self) -> String {
        let mut s = String::from("points");
        for op in &self.ops {
            s.push_str(" → ");
            s.push_str(&format!("{op:?}"));
        }
        s
    }
}

/// Result of a fused chain run: the canvas plus the streaming memory
/// report the fused-execution contract is asserted against.
#[derive(Debug)]
pub struct ChainOutcome {
    pub canvas: Canvas,
    /// Tiles that flowed through the fused pipeline.
    pub tiles: usize,
    /// High-water mark of live tile buffers — never exceeds
    /// `Policy::stream_window(workers)` (0 for in-place sequential
    /// runs).
    pub peak_tiles_in_flight: usize,
}

/// Asserts every Blend operand canvas shares the run's viewport.
fn assert_operand_viewports(vp: &Viewport, chain: &CanvasChain<'_>) {
    for op in chain.ops() {
        if let CanvasOp::Blend { other, .. } = op {
            assert_eq!(
                other.viewport(),
                vp,
                "chain blend operands must share a viewport"
            );
        }
    }
}

/// Lowers the canvas-level operators to raster tile kernels (shared by
/// the point and polygon fused runners — one lowering, one semantics).
fn lower_to_raster<'a>(vp: Viewport, chain: &CanvasChain<'a>) -> OpChain<'a, Texel> {
    let mut raster_chain: OpChain<'a, Texel> =
        OpChain::new().with_null_test(|t: &Texel| t.is_null());
    for op in chain.ops() {
        raster_chain = match op {
            CanvasOp::Value(f) => {
                let f = Arc::clone(f);
                raster_chain.map(move |x, y, t| f(vp.pixel_center(x, y), t))
            }
            CanvasOp::ValueTagged(tag) => raster_chain.map_tagged(*tag),
            // Built-in blends always take the SIMD row kernel: the
            // kernel is bit-identical to `BlendFn::apply` (asserted in
            // `info::tests`), so the streamed ≡ materialized contract
            // is unchanged by the lowering.
            CanvasOp::Blend { other, op } => {
                raster_chain.blend_tagged(other.texels(), Some(other.cover()), op.tag())
            }
            CanvasOp::Mask { pred, .. } => {
                let pred = Arc::clone(pred);
                // Null texels stay null (the materialized mask only
                // tests non-null texels).
                raster_chain.mask(move |_, _, t: &Texel| t.is_null() || pred(t))
            }
            // The tagged mask kernel bakes in the same lowered
            // semantics (null passes, failing texels nulled).
            CanvasOp::MaskTagged { tag, .. } => raster_chain.mask_tagged(*tag),
        };
    }
    raster_chain
}

/// Replays the boundary/source bookkeeping of the materialized operator
/// sequence against the finished planes — sparse metadata only, no
/// intermediate plane is ever touched. Blend stages merge the operand's
/// entries (source-remapped), Mask stages prune entries of pixels whose
/// texel the mask left null (read from the fused run's per-stage
/// bitmaps).
fn replay_bookkeeping(
    canvas: &mut Canvas,
    chain: &CanvasChain<'_>,
    masked: &canvas_raster::MaskOutcome,
) {
    let mut mask_ordinal = 0usize;
    for op in chain.ops() {
        match op {
            CanvasOp::Value(_) | CanvasOp::ValueTagged(_) => {}
            CanvasOp::Blend { other, .. } => {
                // Same merge the materialized Blend performs.
                let area_remap: Vec<u16> = other
                    .area_sources()
                    .iter()
                    .map(|s| canvas.add_area_source(s.clone()))
                    .collect();
                let line_remap: Vec<u16> = other
                    .line_sources()
                    .iter()
                    .map(|s| canvas.add_line_source(s.clone()))
                    .collect();
                canvas
                    .boundary_mut()
                    .merge_remapped(other.boundary(), &area_remap, &line_remap);
                canvas.boundary_mut().sort();
            }
            CanvasOp::Mask { .. } | CanvasOp::MaskTagged { .. } => {
                let ordinal = mask_ordinal;
                canvas
                    .boundary_mut()
                    .retain_pixels(|pixel| !masked.is_null_after(ordinal, pixel));
                canvas.boundary_mut().sort();
                mask_ordinal += 1;
            }
        }
    }
}

/// Executes `render(points) → chain` fused: one streamed tile pass,
/// no intermediate canvases (see module docs). Bit-identical to
/// [`run_points_chain_materialized`] at any thread count, including
/// pipeline stats.
pub fn run_points_chain(
    dev: &mut Device,
    vp: Viewport,
    batch: &PointBatch,
    chain: &CanvasChain<'_>,
) -> ChainOutcome {
    assert_operand_viewports(&vp, chain);
    let mut canvas = Canvas::empty(vp);
    dev.pipeline().note_upload(batch.upload_bytes());
    let raster_chain = lower_to_raster(vp, chain);

    let ids = &batch.ids;
    let weights = &batch.weights;
    let report = {
        let (texels, cover, _) = canvas.planes_mut();
        dev.pipeline().run_chain_points(
            &vp,
            texels,
            Some(cover),
            &batch.points,
            |i, _| Texel::point(ids[i as usize], 1.0, weights[i as usize]),
            |d, s| BlendFn::PointAccumulate.apply(d, s),
            &raster_chain,
        )
    };

    // render_points' entry contract, shared verbatim; then replay the
    // operator bookkeeping (see `replay_bookkeeping`).
    crate::source::push_point_entries(&mut canvas, &vp, batch);
    replay_bookkeeping(&mut canvas, chain, &report.masked);

    ChainOutcome {
        canvas,
        tiles: report.tiles,
        peak_tiles_in_flight: report.peak_tiles_in_flight,
    }
}

/// Executes `render(polygon table) → chain` fused — the polygon-table
/// sibling of [`run_points_chain`], built on
/// `Pipeline::run_chain_polygons`: the instanced tiled polygon draw
/// (texels + certain-cover + boundary entries, internal blend
/// `draw_blend` — the fused `B*[⊕]` of a whole-table render) streams
/// each finished tile through every chain operator before the single
/// blit. Bit-identical to [`run_polygons_chain_materialized`] at any
/// thread count, including pipeline stats.
pub fn run_polygons_chain(
    dev: &mut Device,
    vp: Viewport,
    table: &crate::canvas::AreaSource,
    draw_blend: BlendFn,
    chain: &CanvasChain<'_>,
) -> ChainOutcome {
    assert_operand_viewports(&vp, chain);
    let mut canvas = Canvas::empty(vp);
    let source = canvas.add_area_source(table.clone());
    let upload: u64 = table.iter().map(|p| (p.num_vertices() * 16) as u64).sum();
    dev.pipeline().note_upload(upload);
    let raster_chain = lower_to_raster(vp, chain);

    let (boundary, report) = {
        let (texels, cover, _) = canvas.planes_mut();
        dev.pipeline().run_chain_polygons(
            &vp,
            texels,
            cover,
            table,
            true,
            |record, _| Texel::area(record, 1.0, 0.0),
            |d, s| draw_blend.apply(d, s),
            &raster_chain,
        )
    };

    // render_polygon_set's entry contract, then the operator replay.
    for (record, pixel) in boundary {
        canvas.boundary_mut().push_area(crate::boundary::AreaEntry {
            pixel,
            source,
            record,
        });
    }
    canvas.boundary_mut().sort();
    replay_bookkeeping(&mut canvas, chain, &report.masked);

    ChainOutcome {
        canvas,
        tiles: report.tiles,
        peak_tiles_in_flight: report.peak_tiles_in_flight,
    }
}

/// The materialized reference for [`run_polygons_chain`]: the identical
/// plan executed as `render_polygon_set` followed by one whole-canvas
/// operator pass per stage.
pub fn run_polygons_chain_materialized(
    dev: &mut Device,
    vp: Viewport,
    table: &crate::canvas::AreaSource,
    draw_blend: BlendFn,
    chain: &CanvasChain<'_>,
) -> Canvas {
    let c = crate::source::render_polygon_set(dev, vp, table, draw_blend);
    apply_chain_materialized(dev, c, chain)
}

/// Applies a chain's operators as separate whole-canvas passes (the
/// materialized halves of both equivalence harnesses).
fn apply_chain_materialized(dev: &mut Device, mut c: Canvas, chain: &CanvasChain<'_>) -> Canvas {
    for op in chain.ops() {
        c = match op {
            CanvasOp::Value(f) => {
                let f = Arc::clone(f);
                crate::ops::value::value_transform(dev, &c, move |p, t| f(p, t))
            }
            CanvasOp::ValueTagged(tag) => crate::ops::value::value_transform_tagged(dev, &c, *tag),
            CanvasOp::Blend { other, op } => crate::ops::blend::blend(dev, &c, other, *op),
            CanvasOp::Mask { label, pred } => {
                crate::ops::mask::mask(dev, &c, &MaskSpec::Texel(label, Arc::clone(pred)))
            }
            // Materialized form of the tagged mask: the ordinary texel
            // mask over the kernel's raw predicate — same keep-set.
            CanvasOp::MaskTagged { label, tag } => {
                let tag = *tag;
                crate::ops::mask::mask(
                    dev,
                    &c,
                    &MaskSpec::Texel(
                        label,
                        Arc::new(move |t: &Texel| canvas_raster::simd::mask_pred(tag, t)),
                    ),
                )
            }
        };
    }
    c
}

/// The materialized reference: the identical plan executed as separate
/// whole-canvas operator passes (one intermediate canvas per step).
/// Exists for the streamed≡materialized equivalence harness and as the
/// plan-comparison baseline.
pub fn run_points_chain_materialized(
    dev: &mut Device,
    vp: Viewport,
    batch: &PointBatch,
    chain: &CanvasChain<'_>,
) -> Canvas {
    let c = crate::source::render_points(dev, vp, batch);
    apply_chain_materialized(dev, c, chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::render_query_polygon;
    use canvas_geom::{BBox, Polygon};

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            n,
            n,
        )
    }

    fn pts() -> PointBatch {
        PointBatch::from_points(vec![
            Point::new(2.5, 2.5),
            Point::new(2.6, 2.4),
            Point::new(7.5, 7.5),
            Point::new(1.0, 8.0),
        ])
    }

    #[test]
    fn empty_chain_equals_render_points() {
        let mut dev_a = Device::cpu();
        let mut dev_b = Device::cpu();
        let chain = CanvasChain::new();
        let fused = run_points_chain(&mut dev_a, vp(16), &pts(), &chain);
        let want = crate::source::render_points(&mut dev_b, vp(16), &pts());
        assert_eq!(fused.canvas.texels(), want.texels());
        assert_eq!(fused.canvas.cover(), want.cover());
        assert_eq!(fused.canvas.boundary().points(), want.boundary().points());
        assert_eq!(dev_a.stats(), dev_b.stats());
    }

    #[test]
    fn blend_mask_value_chain_equals_materialized() {
        let q = Polygon::simple(vec![
            Point::new(1.5, 1.5),
            Point::new(8.0, 1.5),
            Point::new(8.0, 8.0),
            Point::new(1.5, 8.0),
        ])
        .unwrap();
        for threads in [1usize, 3] {
            let mut dev_f = Device::cpu_parallel(threads);
            let mut dev_m = Device::cpu_parallel(threads);
            let cq_f = render_query_polygon(&mut dev_f, vp(16), q.clone(), 1);
            let cq_m = render_query_polygon(&mut dev_m, vp(16), q.clone(), 1);
            fn mk(cq: &Canvas) -> CanvasChain<'_> {
                CanvasChain::new()
                    .blend(cq, BlendFn::PointOverArea)
                    .mask("point ∧ area", |t: &Texel| t.has(0) && t.has(2))
                    .value(|_, mut t| {
                        if let Some(mut p) = t.get(0) {
                            p.v2 = p.v2 * 2.0 + 1.0;
                            t.set(0, p);
                        }
                        t
                    })
            }
            let fused = run_points_chain(&mut dev_f, vp(16), &pts(), &mk(&cq_f));
            let want = run_points_chain_materialized(&mut dev_m, vp(16), &pts(), &mk(&cq_m));
            assert_eq!(fused.canvas.texels(), want.texels(), "threads={threads}");
            assert_eq!(fused.canvas.cover(), want.cover(), "threads={threads}");
            assert_eq!(
                fused.canvas.boundary().points(),
                want.boundary().points(),
                "threads={threads}"
            );
            assert_eq!(
                fused.canvas.boundary().areas(),
                want.boundary().areas(),
                "threads={threads}"
            );
            assert_eq!(fused.canvas.area_sources().len(), want.area_sources().len());
            assert_eq!(dev_f.stats(), dev_m.stats(), "stats at {threads} threads");
        }
    }

    #[test]
    fn polygon_chain_equals_materialized() {
        let table: crate::canvas::AreaSource = Arc::new(vec![
            Polygon::simple(vec![
                Point::new(1.0, 1.0),
                Point::new(6.0, 1.0),
                Point::new(6.0, 6.0),
                Point::new(1.0, 6.0),
            ])
            .unwrap(),
            Polygon::simple(vec![
                Point::new(4.0, 4.0),
                Point::new(9.0, 4.0),
                Point::new(9.0, 9.0),
                Point::new(4.0, 9.0),
            ])
            .unwrap(),
        ]);
        fn mk() -> CanvasChain<'static> {
            CanvasChain::new()
                .mask("dense", |t: &Texel| t.get(2).is_some_and(|a| a.v1 >= 2.0))
                .value(|_, mut t| {
                    if let Some(mut a) = t.get(2) {
                        a.v2 = a.v1 * 10.0;
                        t.set(2, a);
                    }
                    t
                })
        }
        for threads in [1usize, 3] {
            let mut dev_f = Device::cpu_parallel(threads);
            let mut dev_m = Device::cpu_parallel(threads);
            let fused = run_polygons_chain(&mut dev_f, vp(16), &table, BlendFn::AreaCount, &mk());
            let want = run_polygons_chain_materialized(
                &mut dev_m,
                vp(16),
                &table,
                BlendFn::AreaCount,
                &mk(),
            );
            assert_eq!(fused.canvas.texels(), want.texels(), "threads={threads}");
            assert_eq!(fused.canvas.cover(), want.cover(), "threads={threads}");
            assert_eq!(
                fused.canvas.boundary().areas(),
                want.boundary().areas(),
                "threads={threads}"
            );
            assert_eq!(dev_f.stats(), dev_m.stats(), "stats at {threads} threads");
            // Only the overlap region (count 2) survives the mask.
            for (_, _, t) in fused.canvas.non_null() {
                let a = t.get(2).unwrap();
                assert!(a.v1 >= 2.0);
                assert_eq!(a.v2, a.v1 * 10.0);
            }
            assert!(!fused.canvas.is_empty());
        }
    }

    #[test]
    fn plan_label_prints_ops() {
        let c = Canvas::empty(vp(8));
        let chain = CanvasChain::new()
            .blend(&c, BlendFn::Over)
            .mask("m", |_| true)
            .value(|_, t| t);
        assert_eq!(chain.plan(), "points → B[Over] → M[m] → V[f]");
        assert_eq!(chain.len(), 3);
        assert!(!chain.is_empty());
    }

    #[test]
    #[should_panic(expected = "share a viewport")]
    fn mismatched_blend_viewport_panics() {
        let other = Canvas::empty(vp(8));
        let chain = CanvasChain::new().blend(&other, BlendFn::Over);
        let mut dev = Device::cpu();
        let _ = run_points_chain(&mut dev, vp(16), &pts(), &chain);
    }
}
