//! Binary canvas serialization.
//!
//! Section 7 of the paper sketches the storage integration: "the storage
//! structure of a relational tuple can be changed to link to the
//! corresponding canvas". That requires canvases to be persistable. This
//! module provides a compact, versioned binary codec for the raster
//! planes and the exact point entries — everything needed to answer
//! point queries from a cached canvas without re-rendering.
//!
//! Vector geometry *sources* (polygon/line tables) are intentionally not
//! embedded: they are shared, already stored as relational data, and are
//! re-attached by the caller on load (the canvas↔tuple duality).

use crate::boundary::PointEntry;
use crate::bytebuf::{Buf, Bytes, BytesMut};
use crate::canvas::Canvas;
use crate::info::{DimInfo, Texel};
use canvas_geom::{BBox, Point};
use canvas_raster::{Texture, Viewport};

const MAGIC: u32 = 0x43414E56; // "CANV"
const VERSION: u16 = 1;

/// Decoding errors.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    BadMagic,
    UnsupportedVersion(u16),
    Truncated,
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a canvas blob (bad magic)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported canvas version {v}"),
            DecodeError::Truncated => write!(f, "canvas blob truncated"),
            DecodeError::Corrupt(what) => write!(f, "corrupt canvas blob: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes the canvas's raster planes and point entries.
pub fn encode(canvas: &Canvas) -> Bytes {
    let vp = canvas.viewport();
    let w = vp.width();
    let h = vp.height();
    let mut out = BytesMut::with_capacity(32 + (w as usize * h as usize) * 14);
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    // Viewport.
    out.put_f64(vp.world().min.x);
    out.put_f64(vp.world().min.y);
    out.put_f64(vp.world().max.x);
    out.put_f64(vp.world().max.y);
    out.put_u32(w);
    out.put_u32(h);

    // Texel plane, sparse: (index, presence, per-dim info).
    let non_null: Vec<(u32, Texel)> = canvas
        .texels()
        .texels()
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_null())
        .map(|(i, t)| (i as u32, *t))
        .collect();
    out.put_u32(non_null.len() as u32);
    for (idx, t) in non_null {
        out.put_u32(idx);
        let mut mask = 0u8;
        for d in 0..3 {
            if t.has(d) {
                mask |= 1 << d;
            }
        }
        out.put_u8(mask);
        for d in 0..3 {
            if let Some(info) = t.get(d) {
                out.put_u32(info.id);
                out.put_f32(info.v1);
                out.put_f32(info.v2);
            }
        }
    }

    // Cover plane, sparse.
    let covered: Vec<(u32, u16)> = canvas
        .cover()
        .texels()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| (i as u32, c))
        .collect();
    out.put_u32(covered.len() as u32);
    for (idx, c) in covered {
        out.put_u32(idx);
        out.put_u16(c);
    }

    // Exact point entries.
    let points = canvas.boundary().points();
    out.put_u32(points.len() as u32);
    for e in points {
        out.put_u32(e.pixel);
        out.put_u32(e.record);
        out.put_f64(e.loc.x);
        out.put_f64(e.loc.y);
        out.put_f32(e.weight);
    }

    out.freeze()
}

/// Reconstructs a canvas from [`encode`]'s output (raster planes + point
/// entries; geometry sources must be re-attached by the caller if
/// area-boundary refinement is needed).
pub fn decode(mut buf: &[u8]) -> Result<Canvas, DecodeError> {
    fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
        if buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }
    need(buf, 6)?;
    if buf.get_u32() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    need(buf, 8 * 4 + 8)?;
    let min = Point::new(buf.get_f64(), buf.get_f64());
    let max = Point::new(buf.get_f64(), buf.get_f64());
    let w = buf.get_u32();
    let h = buf.get_u32();
    if w == 0 || h == 0 || min.x >= max.x || min.y >= max.y {
        return Err(DecodeError::Corrupt("viewport"));
    }
    let vp = Viewport::new(BBox::new(min, max), w, h);
    let mut canvas = Canvas::empty(vp);
    let total = (w as usize) * (h as usize);

    // Texels.
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    if n > total {
        return Err(DecodeError::Corrupt("texel count"));
    }
    {
        let texels: &mut Texture<Texel> = canvas.texels_mut();
        for _ in 0..n {
            need(buf, 5)?;
            let idx = buf.get_u32() as usize;
            if idx >= total {
                return Err(DecodeError::Corrupt("texel index"));
            }
            let mask = buf.get_u8();
            let mut t = Texel::null();
            for d in 0..3 {
                if mask & (1 << d) != 0 {
                    need(buf, 12)?;
                    t.set(d, DimInfo::new(buf.get_u32(), buf.get_f32(), buf.get_f32()));
                }
            }
            let (x, y) = texels.coords(idx);
            texels.set(x, y, t);
        }
    }

    // Cover.
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    if n > total {
        return Err(DecodeError::Corrupt("cover count"));
    }
    for _ in 0..n {
        need(buf, 6)?;
        let idx = buf.get_u32() as usize;
        if idx >= total {
            return Err(DecodeError::Corrupt("cover index"));
        }
        let c = buf.get_u16();
        let (x, y) = canvas.cover().coords(idx);
        canvas.cover_mut().set(x, y, c);
    }

    // Point entries.
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    for _ in 0..n {
        need(buf, 4 + 4 + 16 + 4)?;
        let e = PointEntry {
            pixel: buf.get_u32(),
            record: buf.get_u32(),
            loc: Point::new(buf.get_f64(), buf.get_f64()),
            weight: buf.get_f32(),
        };
        if e.pixel as usize >= total {
            return Err(DecodeError::Corrupt("point pixel"));
        }
        canvas.boundary_mut().push_point(e);
    }
    canvas.boundary_mut().sort();
    Ok(canvas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::device::Device;
    use crate::source::render_points;

    fn sample() -> Canvas {
        let vp = Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            16,
            16,
        );
        let mut dev = Device::nvidia();
        render_points(
            &mut dev,
            vp,
            &PointBatch::with_weights(
                vec![
                    Point::new(1.25, 2.5),
                    Point::new(7.75, 8.125),
                    Point::new(7.8, 8.2),
                ],
                vec![1.5, 2.5, 3.5],
            ),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let blob = encode(&c);
        let back = decode(&blob).unwrap();
        assert_eq!(back.viewport(), c.viewport());
        assert_eq!(back.texels(), c.texels());
        assert_eq!(back.cover(), c.cover());
        assert_eq!(back.boundary().points(), c.boundary().points());
        assert_eq!(back.point_records(), c.point_records());
        assert_eq!(back.point_weight_sum(), c.point_weight_sum());
    }

    #[test]
    fn sparse_encoding_is_compact() {
        let c = sample();
        let blob = encode(&c);
        // 3 points → 2 non-null texels; the blob must be far smaller
        // than a dense dump of 256 texels.
        assert!(blob.len() < 300, "blob was {} bytes", blob.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[]).unwrap_err(), DecodeError::Truncated);
        assert_eq!(decode(&[0u8; 64]).unwrap_err(), DecodeError::BadMagic);
        let mut blob = encode(&sample()).to_vec();
        blob[4] = 0xFF; // version bytes
        assert!(matches!(
            decode(&blob).unwrap_err(),
            DecodeError::UnsupportedVersion(_)
        ));
        let blob = encode(&sample());
        let truncated = &blob[..blob.len() - 3];
        assert_eq!(decode(truncated).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn decoded_canvas_supports_queries() {
        // A cached canvas can answer point queries without re-rendering.
        let c = sample();
        let back = decode(&encode(&c)).unwrap();
        let mut dev = Device::nvidia();
        let spec =
            crate::ops::MaskSpec::Texel("has point", std::sync::Arc::new(|t: &Texel| t.has(0)));
        let masked = crate::ops::mask(&mut dev, &back, &spec);
        assert_eq!(masked.point_records(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_canvas_roundtrip() {
        let vp = Viewport::new(BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 4, 4);
        let c = Canvas::empty(vp);
        let back = decode(&encode(&c)).unwrap();
        assert!(back.is_empty());
    }
}
