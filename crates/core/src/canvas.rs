//! The canvas: the spatial analogue of a relational tuple
//! (paper Definitions 4–6).
//!
//! A canvas is conceptually a function `C : R² → S³`. The discrete
//! realization (paper Section 5) is:
//!
//! * a [`Texture`] of [`Texel`]s over a [`Viewport`] (the rendered
//!   object-information matrix per pixel),
//! * a *certain-coverage* plane counting the 2-primitives that fully
//!   cover each pixel (interior fragments of the conservative render),
//! * a [`BoundaryIndex`] linking boundary pixels back to exact vector
//!   geometry — points keep their true coordinates, polygons and lines
//!   keep `(source, record)` references into shared geometry tables.
//!
//! Together these make query answers **exact**: uniform pixels need no
//! refinement, boundary pixels are re-tested against vector data.

use std::sync::Arc;

use crate::boundary::{AreaEntry, BoundaryIndex};
use crate::info::Texel;
use canvas_geom::polygon::Polygon;
use canvas_geom::polyline::Polyline;
use canvas_geom::Point;
use canvas_raster::{Texture, Viewport};

/// A shared table of vector polygons referenced by boundary entries.
pub type AreaSource = Arc<Vec<Polygon>>;
/// A shared table of vector polylines referenced by boundary entries.
pub type LineSource = Arc<Vec<Polyline>>;

/// The canvas representation of spatial data (see module docs).
#[derive(Clone, Debug)]
pub struct Canvas {
    viewport: Viewport,
    texels: Texture<Texel>,
    /// Number of 2-primitives *certainly* covering each pixel (fragment
    /// was interior, not boundary).
    cover: Texture<u16>,
    boundary: BoundaryIndex,
    area_sources: Vec<AreaSource>,
    line_sources: Vec<LineSource>,
}

impl Canvas {
    /// An empty canvas (Definition 5): every location maps to (∅, ∅, ∅).
    pub fn empty(viewport: Viewport) -> Self {
        Canvas {
            viewport,
            texels: Texture::new(viewport.width(), viewport.height()),
            cover: Texture::new(viewport.width(), viewport.height()),
            boundary: BoundaryIndex::new(),
            area_sources: Vec::new(),
            line_sources: Vec::new(),
        }
    }

    /// Assembles a canvas from rendered planes (used by operators).
    pub(crate) fn from_parts(
        viewport: Viewport,
        texels: Texture<Texel>,
        cover: Texture<u16>,
        boundary: BoundaryIndex,
        area_sources: Vec<AreaSource>,
        line_sources: Vec<LineSource>,
    ) -> Self {
        Canvas {
            viewport,
            texels,
            cover,
            boundary,
            area_sources,
            line_sources,
        }
    }

    /// Simultaneous mutable access to the texel plane, cover plane and
    /// boundary index (operators need split borrows across the planes).
    pub fn planes_mut(&mut self) -> (&mut Texture<Texel>, &mut Texture<u16>, &mut BoundaryIndex) {
        (&mut self.texels, &mut self.cover, &mut self.boundary)
    }

    pub fn viewport(&self) -> &Viewport {
        &self.viewport
    }

    pub fn texels(&self) -> &Texture<Texel> {
        &self.texels
    }

    pub fn texels_mut(&mut self) -> &mut Texture<Texel> {
        &mut self.texels
    }

    pub fn cover(&self) -> &Texture<u16> {
        &self.cover
    }

    pub fn cover_mut(&mut self) -> &mut Texture<u16> {
        &mut self.cover
    }

    pub fn boundary(&self) -> &BoundaryIndex {
        &self.boundary
    }

    pub fn boundary_mut(&mut self) -> &mut BoundaryIndex {
        &mut self.boundary
    }

    pub fn area_sources(&self) -> &[AreaSource] {
        &self.area_sources
    }

    pub fn line_sources(&self) -> &[LineSource] {
        &self.line_sources
    }

    /// Registers a polygon table; returns its source index for boundary
    /// entries.
    pub fn add_area_source(&mut self, src: AreaSource) -> u16 {
        // Deduplicate by identity so repeated blends don't grow tables.
        for (i, existing) in self.area_sources.iter().enumerate() {
            if Arc::ptr_eq(existing, &src) {
                return i as u16;
            }
        }
        self.area_sources.push(src);
        (self.area_sources.len() - 1) as u16
    }

    /// Registers a polyline table; returns its source index.
    pub fn add_line_source(&mut self, src: LineSource) -> u16 {
        for (i, existing) in self.line_sources.iter().enumerate() {
            if Arc::ptr_eq(existing, &src) {
                return i as u16;
            }
        }
        self.line_sources.push(src);
        (self.line_sources.len() - 1) as u16
    }

    /// Resolves an area boundary entry to its vector polygon.
    pub fn resolve_area(&self, e: &AreaEntry) -> &Polygon {
        &self.area_sources[e.source as usize][e.record as usize]
    }

    /// Texel value at a pixel.
    #[inline]
    pub fn texel(&self, x: u32, y: u32) -> Texel {
        self.texels.get(x, y)
    }

    /// Canvas value at a *world* location — the mathematical
    /// `C(x, y) ∈ S³` of Definition 4 (∅ outside the viewport).
    pub fn value_at(&self, p: Point) -> Texel {
        match self.viewport.world_to_pixel(p) {
            Some((x, y)) => self.texels.get(x, y),
            None => Texel::null(),
        }
    }

    /// Linear pixel index of coordinates.
    #[inline]
    pub fn pixel_index(&self, x: u32, y: u32) -> u32 {
        self.texels.index(x, y) as u32
    }

    /// True when every texel is ∅ — operators prune such canvases from
    /// their output, mirroring relational tuple elimination (Section 4).
    pub fn is_empty(&self) -> bool {
        self.texels.texels().iter().all(Texel::is_null)
    }

    /// Number of non-∅ pixels.
    pub fn non_null_count(&self) -> usize {
        self.texels.texels().iter().filter(|t| !t.is_null()).count()
    }

    /// Iterator over `(x, y, texel)` for non-∅ pixels.
    pub fn non_null(&self) -> impl Iterator<Item = (u32, u32, Texel)> + '_ {
        self.texels.iter().filter(|(_, _, t)| !t.is_null())
    }

    /// Exact number of 2-primitives containing the world point `p`, given
    /// that `p` lies in pixel `pixel`: certain covers plus exact tests
    /// against the boundary-touching polygons. This is the refinement
    /// kernel the mask operator runs on boundary pixels.
    pub fn exact_area_count(&self, pixel: u32, p: Point) -> u32 {
        let (x, y) = self.texels.coords(pixel as usize);
        let mut count = self.cover.get(x, y) as u32;
        for e in self.boundary.areas_at(pixel) {
            if self.resolve_area(e).contains_closed(p) {
                count += 1;
            }
        }
        count
    }

    /// Record ids of all surviving point entries — the `SELECT *` result
    /// of point queries (sorted, deduplicated).
    pub fn point_records(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.boundary.points().iter().map(|e| e.record).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Sum of point-entry weights (exact SUM aggregations).
    pub fn point_weight_sum(&self) -> f64 {
        self.boundary.points().iter().map(|e| e.weight as f64).sum()
    }

    /// Distinct record ids present in the 2-primitive rows of non-∅
    /// texels (coarse candidate set for polygon queries).
    pub fn area_records(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .non_null()
            .filter_map(|(_, _, t)| t.get(2).map(|a| a.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Byte size of the texel + cover planes (modeled video memory).
    pub fn size_bytes(&self) -> usize {
        self.texels.size_bytes() + self.cover.size_bytes()
    }

    /// Builds a single-pixel canvas holding `texel` at the given pixel —
    /// the unit the Dissect operator produces.
    pub fn single_pixel(viewport: Viewport, x: u32, y: u32, texel: Texel) -> Self {
        let mut c = Canvas::empty(viewport);
        c.texels.set(x, y, texel);
        c
    }
}

/// Immutable point-record batch: the vector-side representation of a
/// point data set (`DP` in the paper), rendered to canvases on demand.
#[derive(Clone, Debug, Default)]
pub struct PointBatch {
    pub points: Vec<Point>,
    pub ids: Vec<u32>,
    pub weights: Vec<f32>,
}

impl PointBatch {
    /// Batch with ids `0..n` and unit weights.
    pub fn from_points(points: Vec<Point>) -> Self {
        let n = points.len();
        PointBatch {
            points,
            ids: (0..n as u32).collect(),
            weights: vec![1.0; n],
        }
    }

    /// Batch with explicit per-record attribute weights (for SUM/AVG).
    pub fn with_weights(points: Vec<Point>, weights: Vec<f32>) -> Self {
        assert_eq!(points.len(), weights.len());
        let n = points.len();
        PointBatch {
            points,
            ids: (0..n as u32).collect(),
            weights,
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Host-side buffer size (upload cost model): xy as f32 pairs plus
    /// id and weight per point.
    pub fn upload_bytes(&self) -> u64 {
        (self.points.len() * (8 + 4 + 4)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::PointEntry;
    use canvas_geom::BBox;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn empty_canvas() {
        let c = Canvas::empty(vp());
        assert!(c.is_empty());
        assert_eq!(c.non_null_count(), 0);
        assert!(c.value_at(Point::new(5.0, 5.0)).is_null());
        assert!(c.value_at(Point::new(50.0, 50.0)).is_null());
    }

    #[test]
    fn single_pixel_canvas() {
        let t = Texel::point(3, 1.0, 0.0);
        let c = Canvas::single_pixel(vp(), 4, 6, t);
        assert_eq!(c.non_null_count(), 1);
        assert_eq!(c.texel(4, 6), t);
        assert_eq!(c.value_at(Point::new(4.5, 6.5)), t);
    }

    #[test]
    fn source_registration_dedups_by_identity() {
        let mut c = Canvas::empty(vp());
        let src: AreaSource = Arc::new(vec![Polygon::circle(Point::new(5.0, 5.0), 2.0, 16)]);
        let i = c.add_area_source(src.clone());
        let j = c.add_area_source(src.clone());
        assert_eq!(i, j);
        let other: AreaSource = Arc::new(vec![]);
        let k = c.add_area_source(other);
        assert_ne!(i, k);
    }

    #[test]
    fn exact_area_count_uses_cover_and_boundary() {
        let mut c = Canvas::empty(vp());
        let poly = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(0.0, 5.0),
        ])
        .unwrap();
        let src: AreaSource = Arc::new(vec![poly]);
        let s = c.add_area_source(src);
        // Pixel (2,2) certainly covered.
        c.cover_mut().set(2, 2, 1);
        // Pixel (4,4) is a boundary pixel of the square (edge at x=5,y=5
        // clips it); register a boundary entry.
        let pix = c.pixel_index(4, 4);
        c.boundary_mut().push_area(AreaEntry {
            pixel: pix,
            source: s,
            record: 0,
        });
        c.boundary_mut().sort();
        assert_eq!(
            c.exact_area_count(c.pixel_index(2, 2), Point::new(2.5, 2.5)),
            1
        );
        // In the boundary pixel, the point inside the square counts...
        assert_eq!(c.exact_area_count(pix, Point::new(4.9, 4.9)), 1);
        // ...and a point in the same pixel but outside does not (pixel
        // (4,4) spans [4,5)², all inside here, so probe the boundary
        // entry with an outside location explicitly).
        assert_eq!(c.exact_area_count(pix, Point::new(5.5, 5.5)), 0);
    }

    #[test]
    fn point_records_sorted_dedup() {
        let mut c = Canvas::empty(vp());
        for (px, rec) in [(3u32, 9u32), (1, 4), (3, 9), (2, 4)] {
            c.boundary_mut().push_point(PointEntry {
                pixel: px,
                record: rec,
                loc: Point::new(0.0, 0.0),
                weight: 2.0,
            });
        }
        c.boundary_mut().sort();
        assert_eq!(c.point_records(), vec![4, 9]);
        assert_eq!(c.point_weight_sum(), 8.0);
    }

    #[test]
    fn point_batch_constructors() {
        let b = PointBatch::from_points(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.ids, vec![0, 1]);
        assert_eq!(b.weights, vec![1.0, 1.0]);
        assert_eq!(b.upload_bytes(), 32);
        let w = PointBatch::with_weights(vec![Point::new(0.0, 0.0)], vec![7.5]);
        assert_eq!(w.weights[0], 7.5);
    }
}
