//! On-demand canvas rendering from vector data.
//!
//! The paper's prototype "creates the canvases on the fly by simply
//! rendering the geometry using the traditional graphics pipeline"
//! (Section 5.1): spatial data stays stored as tuples, and a query first
//! draws the relevant geometry into off-screen framebuffers. These
//! functions are those draw calls. They also populate the hybrid
//! boundary index and the certain-coverage plane that keep results
//! exact, and account for the host→device upload of the vector buffers.

use std::sync::Arc;

use crate::boundary::{AreaEntry, LineEntry, PointEntry};
use crate::canvas::{AreaSource, Canvas, LineSource, PointBatch};
use crate::device::Device;
use crate::info::{BlendFn, Texel};
use canvas_geom::polygon::Polygon;
use canvas_raster::Viewport;

/// Renders a point batch into one canvas.
///
/// Every point shades `s[0] = (id, 1, weight)`; coincident points in one
/// pixel accumulate through [`BlendFn::PointAccumulate`], so the pixel's
/// `v1` is the point count and `v2` the weight sum — exactly the
/// encodings of Sections 4.1/4.3. Exact locations go to the boundary
/// index (points always need them).
pub fn render_points(dev: &mut Device, vp: Viewport, batch: &PointBatch) -> Canvas {
    let mut canvas = Canvas::empty(vp);
    dev.pipeline().note_upload(batch.upload_bytes());

    let ids = &batch.ids;
    let weights = &batch.weights;
    {
        let (texels, _, _) = canvas.planes_mut();
        dev.pipeline().draw_points_tiled(
            &vp,
            texels,
            &batch.points,
            |i, _| Texel::point(ids[i as usize], 1.0, weights[i as usize]),
            |d, s| BlendFn::PointAccumulate.apply(d, s),
        );
    }
    // Exact locations for refinement and result extraction (the paper
    // stores "the actual location of the points" per pixel).
    push_point_entries(&mut canvas, &vp, batch);
    canvas
}

/// Pushes the exact point entries of a rendered batch (every
/// in-viewport point keeps its true location) and sorts the index —
/// shared by [`render_points`] and the fused chain's boundary replay
/// (`ops::chain::run_points_chain`), so the two paths can never
/// diverge on the entry contract.
pub(crate) fn push_point_entries(canvas: &mut Canvas, vp: &Viewport, batch: &PointBatch) {
    for (i, &p) in batch.points.iter().enumerate() {
        if let Some((x, y)) = vp.world_to_pixel(p) {
            let pixel = canvas.pixel_index(x, y);
            canvas.boundary_mut().push_point(PointEntry {
                pixel,
                record: batch.ids[i],
                loc: p,
                weight: batch.weights[i],
            });
        }
    }
    canvas.boundary_mut().sort();
}

/// Renders one polygon from a shared table into its own canvas
/// (one canvas per record, Definition 6).
///
/// Interior pixels raise the certain-cover count; conservative boundary
/// pixels are linked to the vector polygon for exact refinement. The
/// texel encoding is `s[2] = (id, 1, 0)`.
pub fn render_polygon(
    dev: &mut Device,
    vp: Viewport,
    table: &AreaSource,
    record: usize,
    id: u32,
) -> Canvas {
    render_polygon_with(dev, vp, table, record, Texel::area(id, 1.0, 0.0), true)
}

/// As [`render_polygon`] with an explicit texel value and conservative
/// toggle (the approximate mode of Section 5.1 disables conservative
/// boundary tracking).
pub fn render_polygon_with(
    dev: &mut Device,
    vp: Viewport,
    table: &AreaSource,
    record: usize,
    texel: Texel,
    conservative: bool,
) -> Canvas {
    let mut canvas = Canvas::empty(vp);
    let source = canvas.add_area_source(table.clone());
    let poly = &table[record];
    dev.pipeline()
        .note_upload((poly.num_vertices() * 16) as u64);

    let boundary = {
        let (texels, cover, _) = canvas.planes_mut();
        dev.pipeline().draw_polygons_tiled(
            &vp,
            texels,
            cover,
            std::slice::from_ref(poly),
            conservative,
            |_, _| texel,
            |d, s| d.over(s),
        )
    };
    for (_, pixel) in boundary {
        canvas.boundary_mut().push_area(AreaEntry {
            pixel,
            source,
            record: record as u32,
        });
    }
    canvas.boundary_mut().sort();
    canvas
}

/// Renders *all* polygons of a table into one canvas, blending with the
/// given function — the fused `B*[⊕](C_Q)` of Section 5.1 (multi-polygon
/// constraints) executed as a single instanced draw.
pub fn render_polygon_set(
    dev: &mut Device,
    vp: Viewport,
    table: &AreaSource,
    blend: BlendFn,
) -> Canvas {
    let mut canvas = Canvas::empty(vp);
    let source = canvas.add_area_source(table.clone());
    let upload: u64 = table.iter().map(|p| (p.num_vertices() * 16) as u64).sum();
    dev.pipeline().note_upload(upload);
    let boundary = {
        // One instanced draw for the whole table (a single pass — this
        // is the fusion the Section 5.1 multi-constraint plan relies on).
        let (texels, cover, _) = canvas.planes_mut();
        dev.pipeline().draw_polygons_tiled(
            &vp,
            texels,
            cover,
            table,
            true,
            |record, _| Texel::area(record, 1.0, 0.0),
            |d, s| blend.apply(d, s),
        )
    };
    for (record, pixel) in boundary {
        canvas.boundary_mut().push_area(AreaEntry {
            pixel,
            source,
            record,
        });
    }
    canvas.boundary_mut().sort();
    canvas
}

/// Renders a polyline table into one canvas (1-primitives; supercover
/// coverage, every pixel boundary-linked).
pub fn render_polylines(dev: &mut Device, vp: Viewport, table: &LineSource) -> Canvas {
    let mut canvas = Canvas::empty(vp);
    let source = canvas.add_line_source(table.clone());
    let upload: u64 = table.iter().map(|l| (l.vertices().len() * 16) as u64).sum();
    dev.pipeline().note_upload(upload);
    let boundary = {
        let (texels, _, _) = canvas.planes_mut();
        dev.pipeline().draw_polylines_tiled(
            &vp,
            texels,
            table,
            |record, _| Texel::line(record, 1.0, 0.0),
            |d, s| d.over(s),
        )
    };
    for (record, pixel) in boundary {
        canvas.boundary_mut().push_line(LineEntry {
            pixel,
            source,
            record,
        });
    }
    canvas.boundary_mut().sort();
    canvas
}

/// Convenience: renders a standalone polygon (not yet in a table) by
/// wrapping it in a fresh single-entry table.
pub fn render_query_polygon(dev: &mut Device, vp: Viewport, poly: Polygon, id: u32) -> Canvas {
    let table: AreaSource = Arc::new(vec![poly]);
    render_polygon(dev, vp, &table, 0, id)
}

/// Renders a *heterogeneous* geometric object (Definition 6 / Figure 3):
/// every primitive lands in the object-information row matching its
/// dimension, all sharing the record's `id`. This is the fully general
/// canvas representation — a complex object of points, lines and
/// polygons becomes one canvas with all three rows populated.
pub fn render_object(
    dev: &mut Device,
    vp: Viewport,
    object: &canvas_geom::GeomObject,
    id: u32,
) -> Canvas {
    use canvas_geom::Primitive;
    let mut canvas = Canvas::empty(vp);

    // 0-primitives: gather into one point batch.
    let pts: Vec<canvas_geom::Point> = object
        .of_dim(0)
        .filter_map(|p| match p {
            Primitive::Point(pt) => Some(*pt),
            _ => None,
        })
        .collect();
    if !pts.is_empty() {
        let n = pts.len();
        let batch = crate::canvas::PointBatch {
            points: pts,
            ids: vec![id; n],
            weights: vec![1.0; n],
        };
        let c = render_points(dev, vp, &batch);
        canvas = crate::ops::blend::blend(dev, &canvas, &c, crate::info::BlendFn::Over);
    }

    // 1-primitives.
    let lines: Vec<canvas_geom::Polyline> = object
        .of_dim(1)
        .filter_map(|p| match p {
            Primitive::Line(l) => Some(l.clone()),
            _ => None,
        })
        .collect();
    if !lines.is_empty() {
        let table: LineSource = Arc::new(lines);
        let mut c = render_polylines(dev, vp, &table);
        // All primitives belong to one record: rewrite the line ids.
        {
            let (texels, _, _) = c.planes_mut();
            dev.pipeline().map_texels(texels, |_, _, mut t| {
                if let Some(mut info) = t.get(1) {
                    info.id = id;
                    t.set(1, info);
                }
                t
            });
        }
        canvas = crate::ops::blend::blend(dev, &canvas, &c, crate::info::BlendFn::Over);
    }

    // 2-primitives: one shared table, each polygon rendered with the
    // record's id and union-blended in.
    let areas: Vec<Polygon> = object
        .of_dim(2)
        .filter_map(|p| match p {
            Primitive::Area(a) => Some(a.clone()),
            _ => None,
        })
        .collect();
    if !areas.is_empty() {
        let table: AreaSource = Arc::new(areas);
        for record in 0..table.len() {
            let c = render_polygon_with(dev, vp, &table, record, Texel::area(id, 1.0, 0.0), true);
            canvas = crate::ops::blend::blend(dev, &canvas, &c, crate::info::BlendFn::Over);
        }
    }
    canvas
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn points_render_with_counts_and_entries() {
        let mut dev = Device::nvidia();
        let batch = PointBatch::from_points(vec![
            Point::new(2.5, 2.5),
            Point::new(2.6, 2.6), // same pixel as above
            Point::new(8.5, 1.5),
        ]);
        let c = render_points(&mut dev, vp(), &batch);
        assert_eq!(c.non_null_count(), 2);
        let t = c.texel(2, 2);
        let info = t.get(0).unwrap();
        assert_eq!(info.v1, 2.0); // two points accumulated
        assert_eq!(c.boundary().num_points(), 3);
        assert_eq!(c.point_records(), vec![0, 1, 2]);
        assert!(dev.stats().bytes_uploaded > 0);
    }

    #[test]
    fn points_outside_viewport_dropped() {
        let mut dev = Device::nvidia();
        let batch = PointBatch::from_points(vec![Point::new(50.0, 50.0)]);
        let c = render_points(&mut dev, vp(), &batch);
        assert!(c.is_empty());
        assert_eq!(c.boundary().num_points(), 0);
    }

    #[test]
    fn weights_accumulate_in_v2() {
        let mut dev = Device::nvidia();
        let batch = PointBatch::with_weights(
            vec![Point::new(2.5, 2.5), Point::new(2.7, 2.7)],
            vec![10.0, 4.0],
        );
        let c = render_points(&mut dev, vp(), &batch);
        assert_eq!(c.texel(2, 2).get(0).unwrap().v2, 14.0);
        assert_eq!(c.point_weight_sum(), 14.0);
    }

    #[test]
    fn polygon_render_interior_cover_and_boundary_entries() {
        let mut dev = Device::nvidia();
        let poly = Polygon::simple(vec![
            Point::new(2.0, 2.0),
            Point::new(8.0, 2.0),
            Point::new(8.0, 8.0),
            Point::new(2.0, 8.0),
        ])
        .unwrap();
        let c = render_query_polygon(&mut dev, vp(), poly, 1);
        // Interior pixel: covered certainly, s[2] set.
        assert_eq!(c.cover().get(5, 5), 1);
        assert_eq!(c.texel(5, 5).get(2).unwrap().id, 1);
        // Boundary pixel: has an area entry, cover stays 0.
        let bpix = c.pixel_index(2, 2);
        assert!(!c.boundary().areas_at(bpix).is_empty());
        assert_eq!(c.cover().get(2, 2), 0);
        // Exact refinement resolves correctly at the boundary pixel:
        // pixel (2,2) spans [2,3)², entirely inside the square.
        assert_eq!(c.exact_area_count(bpix, Point::new(2.5, 2.5)), 1);
        // A location outside the polygon in an exterior pixel.
        assert_eq!(
            c.exact_area_count(c.pixel_index(0, 0), Point::new(0.5, 0.5)),
            0
        );
    }

    #[test]
    fn polygon_set_counts_overlap() {
        let mut dev = Device::nvidia();
        let a = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(6.0, 1.0),
            Point::new(6.0, 6.0),
            Point::new(1.0, 6.0),
        ])
        .unwrap();
        let b = Polygon::simple(vec![
            Point::new(4.0, 4.0),
            Point::new(9.0, 4.0),
            Point::new(9.0, 9.0),
            Point::new(4.0, 9.0),
        ])
        .unwrap();
        let table: AreaSource = Arc::new(vec![a, b]);
        let c = render_polygon_set(&mut dev, vp(), &table, BlendFn::AreaCount);
        // Overlap interior pixel: count 2 certain covers.
        assert_eq!(c.cover().get(5, 5), 2);
        assert_eq!(c.texel(5, 5).get(2).unwrap().v1, 2.0);
        // Exclusive interior pixels: count 1.
        assert_eq!(c.cover().get(2, 2), 1);
        assert_eq!(c.texel(2, 2).get(2).unwrap().v1, 1.0);
    }

    #[test]
    fn figure3_complex_object_renders_all_rows() {
        // The paper's Figure 3: two polygons (one with a hole) connected
        // by a line, with a point inside the hole — one canvas, same id
        // in every populated row.
        use canvas_geom::polygon::Ring;
        use canvas_geom::{GeomObject, Polyline, Primitive};
        let ellipse = Polygon::circle(Point::new(2.0, 5.0), 1.5, 32);
        let outer = Ring::new(vec![
            Point::new(5.0, 3.0),
            Point::new(9.0, 3.0),
            Point::new(9.0, 7.0),
            Point::new(5.0, 7.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(6.5, 4.5),
            Point::new(7.5, 4.5),
            Point::new(7.5, 5.5),
            Point::new(6.5, 5.5),
        ])
        .unwrap();
        let holed = Polygon::new(outer, vec![hole]);
        let connector = Polyline::new(vec![Point::new(3.5, 5.0), Point::new(5.0, 5.0)]).unwrap();
        let mut obj = GeomObject::new(vec![]);
        obj.push(Primitive::Area(ellipse));
        obj.push(Primitive::Area(holed));
        obj.push(Primitive::Line(connector));
        obj.push(Primitive::Point(Point::new(7.0, 5.0))); // in the hole

        let mut dev = Device::nvidia();
        let hi_vp = Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            64,
            64,
        );
        let c = render_object(&mut dev, hi_vp, &obj, 42);

        // Ellipse interior: only the 2-row, id 42.
        let t = c.value_at(Point::new(2.0, 5.0));
        assert_eq!(t.get(2).unwrap().id, 42);
        assert!(!t.has(0) && !t.has(1));
        // Square interior (not hole): 2-row.
        assert!(c.value_at(Point::new(5.5, 6.5)).has(2));
        // Point inside the hole: 0-row set; exact entry kept.
        let t = c.value_at(Point::new(7.0, 5.0));
        assert_eq!(t.get(0).unwrap().id, 42);
        // Connector midpoint: 1-row with the object id.
        let t = c.value_at(Point::new(4.3, 5.0));
        assert_eq!(t.get(1).unwrap().id, 42);
        // Background: ∅.
        assert!(c.value_at(Point::new(0.5, 0.5)).is_null());
    }

    #[test]
    fn polyline_renders_all_boundary() {
        let mut dev = Device::nvidia();
        let line =
            canvas_geom::Polyline::new(vec![Point::new(1.5, 1.5), Point::new(8.5, 1.5)]).unwrap();
        let table: LineSource = Arc::new(vec![line]);
        let c = render_polylines(&mut dev, vp(), &table);
        assert!(c.non_null_count() >= 8);
        assert_eq!(c.boundary().num_lines(), c.non_null_count());
        assert!(c.texel(4, 1).has(1));
    }
}
