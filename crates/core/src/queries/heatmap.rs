//! Selection heatmap: the density visualization of a polygonal
//! selection, executed as one **fused operator chain**.
//!
//! The plan is the Section 4.1 selection shape with a Value Transform
//! finisher:
//!
//! ```text
//! C_heat ← V[log](M[Mp coarse](B[⊙](C_P, C_Q)))
//! ```
//!
//! All points render into a density canvas, the query polygon masks it
//! to the selection region (coarse texel level — a heatmap is a
//! pixel-resolution product, so no exact refinement is needed), and a
//! Value Transform rewrites each surviving pixel's intensity to
//! `ln(1 + count)` so dense pixels don't saturate the color ramp.
//!
//! Fused execution ([`run_points_chain`]) streams every rendered tile
//! through blend → mask → value before it is blitted: the blended and
//! masked intermediate canvases of the textbook plan are never
//! materialized. [`selection_heatmap_materialized`] runs the identical
//! plan as separate whole-canvas passes; the equivalence harness
//! asserts the two are bit-identical at any thread count.

use crate::canvas::{Canvas, PointBatch};
use crate::device::Device;
use crate::info::{BlendFn, Texel};
use crate::ops::chain::{
    run_points_chain, run_points_chain_materialized, CanvasChain, ChainOutcome,
};
use crate::source::render_query_polygon;
use canvas_geom::polygon::Polygon;
use canvas_raster::Viewport;

/// The heatmap chain over a rendered query-polygon canvas.
fn heat_chain(cq: &Canvas) -> CanvasChain<'_> {
    CanvasChain::new()
        .blend(cq, BlendFn::PointOverArea)
        .mask("point ∧ area", |t: &Texel| t.has(0) && t.has(2))
        .value(|_, mut t| {
            if let Some(mut p) = t.get(0) {
                p.v2 = (1.0 + p.v1).ln();
                t.set(0, p);
            }
            t
        })
}

/// `C_heat ← V[log](M[Mp coarse](B[⊙](C_P, C_Q)))`, fused (see module
/// docs). The returned [`ChainOutcome`]'s canvas carries `ln(1 + count)`
/// in the 0-row's `v2` slot on surviving pixels (raw count stays in
/// `v1`), alongside the fused run's streaming memory report.
pub fn selection_heatmap(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> ChainOutcome {
    let cq = render_query_polygon(dev, vp, q.clone(), 1);
    run_points_chain(dev, vp, data, &heat_chain(&cq))
}

/// The identical plan executed as separate whole-canvas operator
/// passes — the materialized reference for the equivalence harness.
pub fn selection_heatmap_materialized(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> Canvas {
    let cq = render_query_polygon(dev, vp, q.clone(), 1);
    run_points_chain_materialized(dev, vp, data, &heat_chain(&cq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn q() -> Polygon {
        Polygon::simple(vec![
            Point::new(20.0, 15.0),
            Point::new(80.0, 20.0),
            Point::new(70.0, 85.0),
            Point::new(15.0, 70.0),
        ])
        .unwrap()
    }

    #[test]
    fn heatmap_fused_equals_materialized_and_masks_outside() {
        let batch = PointBatch::from_points(random_points(600, 5));
        for threads in [1usize, 4] {
            let mut dev_f = Device::cpu_parallel(threads);
            let mut dev_m = Device::cpu_parallel(threads);
            let fused = selection_heatmap(&mut dev_f, vp(), &batch, &q());
            let want = selection_heatmap_materialized(&mut dev_m, vp(), &batch, &q());
            assert_eq!(fused.canvas.texels(), want.texels(), "threads={threads}");
            assert_eq!(fused.canvas.cover(), want.cover(), "threads={threads}");
            assert_eq!(
                fused.canvas.boundary().points(),
                want.boundary().points(),
                "threads={threads}"
            );
            assert_eq!(dev_f.stats(), dev_m.stats(), "stats at {threads} threads");
            // Heat values are log-scaled counts on surviving pixels.
            for (_, _, t) in fused.canvas.non_null() {
                let p = t.get(0).expect("surviving pixels carry the 0-row");
                assert_eq!(p.v2, (1.0 + p.v1).ln());
                assert!(t.has(2), "surviving pixels lie inside the query");
            }
        }
    }

    #[test]
    fn heatmap_empty_outside_query() {
        // All points outside the polygon: the heat canvas is empty.
        let batch = PointBatch::from_points(vec![Point::new(2.0, 2.0), Point::new(95.0, 95.0)]);
        let mut dev = Device::cpu();
        let heat = selection_heatmap(&mut dev, vp(), &batch, &q());
        assert!(heat.canvas.is_empty());
        assert_eq!(heat.canvas.boundary().num_points(), 0, "entries pruned");
    }
}
