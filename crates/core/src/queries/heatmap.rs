//! Selection heatmap: the density visualization of a polygonal
//! selection, executed as one **fused operator chain**.
//!
//! The plan is the Section 4.1 selection shape with a Value Transform
//! finisher:
//!
//! ```text
//! C_heat ← V[log](M[Mp coarse](B[⊙](C_P, C_Q)))
//! ```
//!
//! All points render into a density canvas, the query polygon masks it
//! to the selection region (coarse texel level — a heatmap is a
//! pixel-resolution product, so no exact refinement is needed), and a
//! Value Transform rewrites each surviving pixel's intensity to
//! `ln(1 + count)` so dense pixels don't saturate the color ramp.
//!
//! Fused execution ([`run_points_chain`]) streams every rendered tile
//! through blend → mask → value before it is blitted: the blended and
//! masked intermediate canvases of the textbook plan are never
//! materialized. [`selection_heatmap_materialized`] runs the identical
//! plan as separate whole-canvas passes; the equivalence harness
//! asserts the two are bit-identical at any thread count.

use crate::algebra::subplan::{acquire_or_render, NullExchange, SubplanExchange};
use crate::algebra::{Expr, FingerprintBuilder};
use crate::canvas::{AreaSource, Canvas, PointBatch};
use crate::device::Device;
use crate::info::{BlendFn, Texel};
use crate::ops::chain::{
    run_points_chain, run_points_chain_materialized, run_polygons_chain,
    run_polygons_chain_materialized, CanvasChain, ChainOutcome,
};
use crate::source::{render_polygon_with, render_query_polygon};
use canvas_geom::polygon::Polygon;
use canvas_raster::{MaskTag, ValueTag, Viewport};
use std::sync::Arc;

/// The heatmap chain over a rendered query-polygon canvas. Mask and
/// value stages are the built-in tagged forms, so every stage of the
/// fused tile flow runs the dispatched SIMD row kernels.
fn heat_chain(cq: &Canvas) -> CanvasChain<'_> {
    CanvasChain::new()
        .blend(cq, BlendFn::PointOverArea)
        .mask_tagged("point ∧ area", MaskTag::PointAndArea)
        .value_tagged(ValueTag::HeatLog)
}

/// `C_heat ← V[log](M[Mp coarse](B[⊙](C_P, C_Q)))`, fused (see module
/// docs). The returned [`ChainOutcome`]'s canvas carries `ln(1 + count)`
/// in the 0-row's `v2` slot on surviving pixels (raw count stays in
/// `v1`), alongside the fused run's streaming memory report.
pub fn selection_heatmap(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> ChainOutcome {
    selection_heatmap_via(dev, vp, data, q, &NullExchange)
}

/// [`selection_heatmap`] with a [`SubplanExchange`] for the operand
/// canvas the chain materializes anyway: `C_Q`, the rendered query
/// polygon. Its identity is the structural fingerprint of the
/// equivalent plan leaf `Expr::query_polygon(q, 1)` — exactly the node
/// an `Expr`-path selection over the same polygon renders — so a fused
/// heatmap and an algebra-path selection share one `C_Q` render. The
/// streamed point tiles themselves are **never** published: fusion is
/// not broken by a cut point (see `ops::chain`).
pub fn selection_heatmap_via(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
    ex: &dyn SubplanExchange,
) -> ChainOutcome {
    let fp = crate::algebra::fingerprint(&Expr::query_polygon(q.clone(), 1));
    let cq = acquire_or_render(ex, fp, &vp, || render_query_polygon(dev, vp, q.clone(), 1));
    run_points_chain(dev, vp, data, &heat_chain(&cq))
}

/// The identical plan executed as separate whole-canvas operator
/// passes — the materialized reference for the equivalence harness.
pub fn selection_heatmap_materialized(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> Canvas {
    let cq = render_query_polygon(dev, vp, q.clone(), 1);
    run_points_chain_materialized(dev, vp, data, &heat_chain(&cq))
}

// ---------------------------------------------------------------------
// Polygon-density (choropleth) heatmap — the polygon-table fused chain.
// ---------------------------------------------------------------------

/// Count tag rendered into the query-region canvas: far above any real
/// overlap count (f32 holds integers exactly to 2²⁴), so after the
/// `⊕` blend a pixel's 2-row count decomposes as
/// `inside_query · TAG + polygon_count`. This is the canvas-algebra
/// trick of encoding a constraint in the value rows — the same coarse
/// (texel-level) resolution argument as the selection heatmap applies:
/// a heatmap is a pixel-resolution product.
const QUERY_TAG: f32 = (1u32 << 20) as f32;

/// The choropleth chain over a tag-rendered query-region canvas:
/// `V[log](M[inside ∧ dense](B[⊕](C_Y*, C_tag)))`.
fn density_chain(ctag: &Canvas) -> CanvasChain<'_> {
    CanvasChain::new()
        .blend(ctag, BlendFn::AreaCount)
        .mask_tagged(
            "inside query ∧ ≥1 polygon",
            MaskTag::AreaV1Above {
                threshold: QUERY_TAG,
            },
        )
        .value_tagged(ValueTag::DensityLog { tag: QUERY_TAG })
}

/// Renders the query region with the count tag (id `u32::MAX` so it can
/// never shadow a table record id).
fn render_query_tag(dev: &mut Device, vp: Viewport, q: &Polygon) -> Canvas {
    let table: AreaSource = Arc::new(vec![q.clone()]);
    render_polygon_with(
        dev,
        vp,
        &table,
        0,
        Texel::area(u32::MAX, QUERY_TAG, 0.0),
        true,
    )
}

/// Polygon-density heatmap (choropleth) of a polygon table restricted
/// to a query region, executed as one **fused polygon chain** over
/// `Pipeline::run_chain_polygons`: the instanced table draw accumulates
/// per-pixel overlap counts (`B*[⊕](C_Y*)`), and each finished tile
/// streams through blend-with-the-tagged-query-region → mask → log
/// value transform before it is blitted — no intermediate canvas is
/// ever materialized. Surviving pixels carry the polygon overlap count
/// in the 2-row's `v1` and `ln(1 + count)` in `v2`.
pub fn polygon_density_heatmap(
    dev: &mut Device,
    vp: Viewport,
    table: &AreaSource,
    q: &Polygon,
) -> ChainOutcome {
    polygon_density_heatmap_via(dev, vp, table, q, &NullExchange)
}

/// [`polygon_density_heatmap`] with a [`SubplanExchange`] for the
/// tag-rendered query-region canvas (the operand the chain
/// materializes anyway). The tag canvas is not expressible as a plain
/// plan leaf, so its identity is a namespaced descriptor fingerprint
/// over the polygon's vertex values — two choropleths restricted to
/// the same region share one tag render. The instanced table draw
/// stays fused and unpublished.
pub fn polygon_density_heatmap_via(
    dev: &mut Device,
    vp: Viewport,
    table: &AreaSource,
    q: &Polygon,
    ex: &dyn SubplanExchange,
) -> ChainOutcome {
    let mut fb = FingerprintBuilder::new("core/heatmap/query-tag");
    fb.polygon(q);
    let ctag = acquire_or_render(ex, fb.finish(), &vp, || render_query_tag(dev, vp, q));
    run_polygons_chain(dev, vp, table, BlendFn::AreaCount, &density_chain(&ctag))
}

/// The identical choropleth plan executed as separate whole-canvas
/// operator passes — the materialized reference for the equivalence
/// harness.
pub fn polygon_density_heatmap_materialized(
    dev: &mut Device,
    vp: Viewport,
    table: &AreaSource,
    q: &Polygon,
) -> Canvas {
    let ctag = render_query_tag(dev, vp, q);
    run_polygons_chain_materialized(dev, vp, table, BlendFn::AreaCount, &density_chain(&ctag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn q() -> Polygon {
        Polygon::simple(vec![
            Point::new(20.0, 15.0),
            Point::new(80.0, 20.0),
            Point::new(70.0, 85.0),
            Point::new(15.0, 70.0),
        ])
        .unwrap()
    }

    #[test]
    fn heatmap_fused_equals_materialized_and_masks_outside() {
        let batch = PointBatch::from_points(random_points(600, 5));
        for threads in [1usize, 4] {
            let mut dev_f = Device::cpu_parallel(threads);
            let mut dev_m = Device::cpu_parallel(threads);
            let fused = selection_heatmap(&mut dev_f, vp(), &batch, &q());
            let want = selection_heatmap_materialized(&mut dev_m, vp(), &batch, &q());
            assert_eq!(fused.canvas.texels(), want.texels(), "threads={threads}");
            assert_eq!(fused.canvas.cover(), want.cover(), "threads={threads}");
            assert_eq!(
                fused.canvas.boundary().points(),
                want.boundary().points(),
                "threads={threads}"
            );
            assert_eq!(dev_f.stats(), dev_m.stats(), "stats at {threads} threads");
            // Heat values are log-scaled counts on surviving pixels.
            for (_, _, t) in fused.canvas.non_null() {
                let p = t.get(0).expect("surviving pixels carry the 0-row");
                assert_eq!(p.v2, (1.0 + p.v1).ln());
                assert!(t.has(2), "surviving pixels lie inside the query");
            }
        }
    }

    fn zone_table() -> AreaSource {
        // Overlapping square zones so overlap counts span 0..=3, some
        // crossing the query region's boundary.
        let sq = |x0: f64, y0: f64, s: f64| {
            Polygon::simple(vec![
                Point::new(x0, y0),
                Point::new(x0 + s, y0),
                Point::new(x0 + s, y0 + s),
                Point::new(x0, y0 + s),
            ])
            .unwrap()
        };
        Arc::new(vec![
            sq(10.0, 10.0, 45.0),
            sq(30.0, 25.0, 40.0),
            sq(40.0, 35.0, 35.0),
            sq(85.0, 85.0, 10.0), // outside the query region
        ])
    }

    #[test]
    fn polygon_density_fused_equals_materialized() {
        let table = zone_table();
        for threads in [1usize, 4] {
            let mut dev_f = Device::cpu_parallel(threads);
            let mut dev_m = Device::cpu_parallel(threads);
            let fused = polygon_density_heatmap(&mut dev_f, vp(), &table, &q());
            let want = polygon_density_heatmap_materialized(&mut dev_m, vp(), &table, &q());
            assert_eq!(fused.canvas.texels(), want.texels(), "threads={threads}");
            assert_eq!(fused.canvas.cover(), want.cover(), "threads={threads}");
            assert_eq!(
                fused.canvas.boundary().areas(),
                want.boundary().areas(),
                "threads={threads}"
            );
            assert_eq!(dev_f.stats(), dev_m.stats(), "stats at {threads} threads");
            // Surviving pixels: inside the query region, ≥1 zone,
            // log-scaled density; the tag never leaks out.
            assert!(!fused.canvas.is_empty());
            let mut max_count = 0.0f32;
            for (_, _, t) in fused.canvas.non_null() {
                let a = t.get(2).expect("2-row survives");
                assert!(a.v1 >= 1.0 && a.v1 < QUERY_TAG);
                assert_eq!(a.v2, (1.0 + a.v1).ln());
                max_count = max_count.max(a.v1);
            }
            assert!(max_count >= 2.0, "zones overlap inside the query");
            // The fused run streamed tiles within the policy window.
            if threads > 1 {
                let pool = dev_f.pool();
                let window = pool.policy().stream_window(pool.worker_count());
                assert!(fused.peak_tiles_in_flight <= window);
                assert!(fused.tiles > 0);
            }
        }
    }

    #[test]
    fn polygon_density_empty_outside_query() {
        // Only the far-corner zone exists: nothing inside the query.
        let table: AreaSource = Arc::new(vec![Polygon::simple(vec![
            Point::new(86.0, 86.0),
            Point::new(95.0, 86.0),
            Point::new(95.0, 95.0),
            Point::new(86.0, 95.0),
        ])
        .unwrap()]);
        let mut dev = Device::cpu();
        let heat = polygon_density_heatmap(&mut dev, vp(), &table, &q());
        assert!(heat.canvas.is_empty());
    }

    #[test]
    fn heatmap_empty_outside_query() {
        // All points outside the polygon: the heat canvas is empty.
        let batch = PointBatch::from_points(vec![Point::new(2.0, 2.0), Point::new(95.0, 95.0)]);
        let mut dev = Device::cpu();
        let heat = selection_heatmap(&mut dev, vp(), &batch, &q());
        assert!(heat.canvas.is_empty());
        assert_eq!(heat.canvas.boundary().num_points(), 0, "entries pruned");
    }
}
