//! Spatial skyline (paper Section 4.5's computational-geometry class).
//!
//! Given data points `P` and query sites `Q`, the spatial skyline is the
//! set of data points not *spatially dominated*: `p` dominates `p'` when
//! `dist(p, q) ≤ dist(p', q)` for every `q ∈ Q` with at least one strict
//! inequality. (Classic example: hotels vs. a conference venue and a
//! beach.)
//!
//! Like the convex hull, this composes with the algebra rather than
//! being expressed in it: the candidate set comes from a canvas
//! selection, and the dominance test runs on the exact point entries
//! the result canvas carries.

use std::sync::Arc;

use crate::canvas::PointBatch;
use crate::device::Device;
use crate::queries::selection::{
    select_points_in_polygon, select_points_in_polygon_via, PointSelection,
};
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;
use canvas_raster::Viewport;

/// True when `a` spatially dominates `b` w.r.t. the query sites.
pub fn dominates(a: Point, b: Point, sites: &[Point]) -> bool {
    let mut strict = false;
    for q in sites {
        let da = a.dist_sq(*q);
        let db = b.dist_sq(*q);
        if da > db {
            return false;
        }
        if da < db {
            strict = true;
        }
    }
    strict
}

/// Spatial skyline of a whole point set: record ids of non-dominated
/// points, sorted. `O(n²·|Q|)` block-nested-loop — fine for the result
/// cardinalities skylines produce.
pub fn skyline(data: &PointBatch, sites: &[Point]) -> Vec<u32> {
    skyline_of(&data.points, &data.ids, sites)
}

/// Spatial skyline restricted to the points selected by a polygonal
/// constraint — algebra selection composed with the skyline procedure.
pub fn skyline_of_selection(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    constraint: &Polygon,
    sites: &[Point],
) -> Vec<u32> {
    let sel = select_points_in_polygon(dev, vp, data, constraint);
    skyline_of_canvas_points(&sel, sites)
}

/// [`skyline_of_selection`] over a shared dataset handle with a subplan
/// exchange: the interior selection render is shared with any concurrent
/// query over the same handle and constraint.
pub fn skyline_of_selection_via(
    dev: &mut Device,
    vp: Viewport,
    data: &Arc<PointBatch>,
    constraint: &Polygon,
    sites: &[Point],
    ex: &dyn crate::algebra::SubplanExchange,
) -> Vec<u32> {
    let sel = select_points_in_polygon_via(dev, vp, data, constraint, ex);
    skyline_of_canvas_points(&sel, sites)
}

fn skyline_of_canvas_points(sel: &PointSelection, sites: &[Point]) -> Vec<u32> {
    let entries = sel.canvas.boundary().points();
    let pts: Vec<Point> = entries.iter().map(|e| e.loc).collect();
    let ids: Vec<u32> = entries.iter().map(|e| e.record).collect();
    skyline_of(&pts, &ids, sites)
}

fn skyline_of(pts: &[Point], ids: &[u32], sites: &[Point]) -> Vec<u32> {
    if sites.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    'candidate: for (i, p) in pts.iter().enumerate() {
        for (j, other) in pts.iter().enumerate() {
            if i != j && dominates(*other, *p, sites) {
                continue 'candidate;
            }
        }
        out.push(ids[i]);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;

    fn extent_vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    #[test]
    fn dominance_basics() {
        let sites = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        // a closer to both sites than b.
        let a = Point::new(5.0, 1.0);
        let b = Point::new(5.0, 5.0);
        assert!(dominates(a, b, &sites));
        assert!(!dominates(b, a, &sites));
        // Trade-off: each closer to one site: neither dominates.
        let near0 = Point::new(1.0, 0.0);
        let near1 = Point::new(9.0, 0.0);
        assert!(!dominates(near0, near1, &sites));
        assert!(!dominates(near1, near0, &sites));
        // Equal points: no strict inequality, no domination.
        assert!(!dominates(a, a, &sites));
    }

    #[test]
    fn skyline_single_site_is_nearest_point() {
        let pts = vec![
            Point::new(10.0, 10.0),
            Point::new(20.0, 20.0),
            Point::new(30.0, 30.0),
        ];
        let batch = PointBatch::from_points(pts);
        let sky = skyline(&batch, &[Point::new(0.0, 0.0)]);
        assert_eq!(sky, vec![0]);
    }

    #[test]
    fn skyline_contains_per_site_nearest() {
        let mut state = 9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let sites = vec![Point::new(10.0, 90.0), Point::new(90.0, 10.0)];
        let batch = PointBatch::from_points(pts.clone());
        let sky = skyline(&batch, &sites);
        // The nearest point to each site is never dominated.
        for q in &sites {
            let nearest = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist_sq(*q).partial_cmp(&b.dist_sq(*q)).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            assert!(sky.contains(&nearest), "site {q} nearest {nearest} missing");
        }
        // Every non-skyline point is dominated by some skyline point.
        for (i, p) in pts.iter().enumerate() {
            if !sky.contains(&(i as u32)) {
                assert!(
                    sky.iter().any(|&s| dominates(pts[s as usize], *p, &sites)),
                    "point {i} excluded but undominated"
                );
            }
        }
    }

    #[test]
    fn skyline_of_selection_composes() {
        let mut dev = Device::nvidia();
        let pts = vec![
            Point::new(30.0, 30.0), // inside, near site
            Point::new(40.0, 40.0), // inside, dominated by 0
            Point::new(5.0, 5.0),   // outside constraint (would dominate!)
        ];
        let constraint = Polygon::simple(vec![
            Point::new(20.0, 20.0),
            Point::new(60.0, 20.0),
            Point::new(60.0, 60.0),
            Point::new(20.0, 60.0),
        ])
        .unwrap();
        let sites = vec![Point::new(0.0, 0.0)];
        let batch = PointBatch::from_points(pts);
        let sky = skyline_of_selection(&mut dev, extent_vp(), &batch, &constraint, &sites);
        // Point 2 is excluded by the constraint, so point 0 wins.
        assert_eq!(sky, vec![0]);
    }

    #[test]
    fn empty_inputs() {
        let batch = PointBatch::from_points(vec![]);
        assert!(skyline(&batch, &[Point::ORIGIN]).is_empty());
        let batch = PointBatch::from_points(vec![Point::new(1.0, 1.0)]);
        assert!(skyline(&batch, &[]).is_empty());
    }
}
