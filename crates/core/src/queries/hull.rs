//! Computational-geometry queries (paper Section 4.5): convex hull.
//!
//! The paper notes that computational-geometry queries beyond Voronoi
//! (convex hull, spatial skyline) may combine the algebra with stored
//! procedures or dedicated algorithms. Here the hull itself is computed
//! exactly (Andrew's monotone chain from `canvas-geom`), while the
//! canvas algebra supplies composition: hull over a *selection's* result
//! reuses the selection plan unchanged.

use std::sync::Arc;

use crate::canvas::PointBatch;
use crate::device::Device;
use crate::queries::selection::{select_points_in_polygon, select_points_in_polygon_via};
use canvas_geom::hull::convex_hull;
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;
use canvas_raster::Viewport;

/// Convex hull of an entire point data set (CCW ring).
pub fn hull_of_points(data: &PointBatch) -> Vec<Point> {
    convex_hull(&data.points)
}

/// Convex hull of the points selected by a polygonal constraint — a
/// composed query: `hull(M[Mp'](B[⊙](C_P, C_Q)))`. The exact point
/// entries of the result canvas feed the hull directly.
pub fn hull_of_selection(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> Vec<Point> {
    let sel = select_points_in_polygon(dev, vp, data, q);
    hull_of_canvas_points(&sel)
}

/// [`hull_of_selection`] over a shared dataset handle with a subplan
/// exchange: the interior selection render is shared with any concurrent
/// query over the same handle and constraint.
pub fn hull_of_selection_via(
    dev: &mut Device,
    vp: Viewport,
    data: &Arc<PointBatch>,
    q: &Polygon,
    ex: &dyn crate::algebra::SubplanExchange,
) -> Vec<Point> {
    let sel = select_points_in_polygon_via(dev, vp, data, q, ex);
    hull_of_canvas_points(&sel)
}

fn hull_of_canvas_points(sel: &crate::queries::selection::PointSelection) -> Vec<Point> {
    let pts: Vec<Point> = sel
        .canvas
        .boundary()
        .points()
        .iter()
        .map(|e| e.loc)
        .collect();
    convex_hull(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::hull::hull_contains;
    use canvas_geom::BBox;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    #[test]
    fn hull_contains_all_inputs() {
        let pts = random_points(200, 31);
        let data = PointBatch::from_points(pts.clone());
        let h = hull_of_points(&data);
        assert!(h.len() >= 3);
        for p in &pts {
            assert!(hull_contains(&h, *p));
        }
    }

    #[test]
    fn hull_of_selection_composes() {
        let mut dev = Device::nvidia();
        let pts = random_points(300, 13);
        let q = Polygon::simple(vec![
            Point::new(20.0, 20.0),
            Point::new(80.0, 25.0),
            Point::new(70.0, 75.0),
            Point::new(25.0, 70.0),
        ])
        .unwrap();
        let data = PointBatch::from_points(pts.clone());
        let h = hull_of_selection(&mut dev, vp(), &data, &q);
        assert!(h.len() >= 3);
        // Hull covers exactly the selected subset...
        for p in pts.iter().filter(|p| q.contains_closed(**p)) {
            assert!(hull_contains(&h, *p));
        }
        // ...and every hull vertex is a selected point.
        for v in &h {
            assert!(q.contains_closed(*v));
            assert!(pts.iter().any(|p| p == v));
        }
    }

    #[test]
    fn hull_of_empty_selection() {
        let mut dev = Device::nvidia();
        let data = PointBatch::from_points(vec![Point::new(90.0, 90.0)]);
        let q = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let h = hull_of_selection(&mut dev, vp(), &data, &q);
        assert!(h.len() < 3);
    }
}
