//! Spatial aggregation queries (paper Sections 4.3 and 5.2).
//!
//! Two shapes:
//!
//! * **aggregation over a select** (Figure 7):
//!   `C_count ← B*[+](G[γc](C_result))` — the masked selection result is
//!   scattered to a per-group slot and accumulated,
//! * **group-by over a join** — the same expression with the selection
//!   replaced by the join, and, following RasterJoin (Section 5.2), the
//!   much cheaper plan that *first* merges all points into one density
//!   canvas of partial aggregates:
//!   `C_count ← B*[+](D*[γc](M[Mp](B[⊙](B*[+](C_P)), C_Y)))`.
//!
//! COUNT uses the `v1` slot, SUM the `v2` slot (the third element of the
//! object-information tuple, as in Section 4.3's `SUM(A)` example); AVG
//! is their quotient, MIN/MAX fold over the exact point entries.

use crate::canvas::{AreaSource, PointBatch};
use crate::device::Device;
use crate::info::BlendFn;
use crate::ops::{group_viewport, map_scatter, CountCond, MaskSpec, ValueMap};
use canvas_geom::polygon::Polygon;
use canvas_raster::Viewport;

/// Per-group aggregates from a group-by query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupAggregates {
    /// `counts[g]` = number of points in group `g`.
    pub counts: Vec<u64>,
    /// `sums[g]` = sum of point weights in group `g`.
    pub sums: Vec<f64>,
}

impl GroupAggregates {
    pub fn avg(&self, g: usize) -> Option<f64> {
        let n = *self.counts.get(g)? as f64;
        if n == 0.0 {
            None
        } else {
            Some(self.sums[g] / n)
        }
    }
}

/// `SELECT COUNT(*) FROM D_P WHERE Location INSIDE Q` (Figure 7 plan).
pub fn count_points_in_polygon(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> u64 {
    let sel = super::selection::select_points_in_polygon(dev, vp, data, q);
    // G[γc] scatters every surviving texel to the query polygon's group
    // slot (its id is 1); B*[+] accumulation happens inside the scatter.
    let groups = map_scatter(
        dev,
        &sel.canvas,
        &ValueMap::area_id_slot(),
        group_viewport(2),
        BlendFn::Accumulate,
    );
    groups.texel(1, 0).get(0).map(|i| i.v1 as u64).unwrap_or(0)
}

/// `SELECT SUM(w) FROM D_P WHERE Location INSIDE Q` — same plan, reading
/// the `v2` accumulator (Section 4.3's SUM formulation).
pub fn sum_points_in_polygon(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> f64 {
    let sel = super::selection::select_points_in_polygon(dev, vp, data, q);
    let groups = map_scatter(
        dev,
        &sel.canvas,
        &ValueMap::area_id_slot(),
        group_viewport(2),
        BlendFn::Accumulate,
    );
    groups
        .texel(1, 0)
        .get(0)
        .map(|i| i.v2 as f64)
        .unwrap_or(0.0)
}

/// MIN/MAX over the selected points' weights — distributive aggregates
/// folded over the exact point entries of the result canvas.
pub fn minmax_points_in_polygon(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> Option<(f32, f32)> {
    let sel = super::selection::select_points_in_polygon(dev, vp, data, q);
    sel.canvas
        .boundary()
        .points()
        .iter()
        .map(|e| e.weight)
        .fold(None, |acc, w| match acc {
            None => Some((w, w)),
            Some((lo, hi)) => Some((lo.min(w), hi.max(w))),
        })
}

/// Group-by count over a Type I join, RasterJoin style (Section 5.2):
///
/// ```text
/// C_count ← B*[+](D*[γc](M[Mp](B[⊙](B*[+](C_P), C_Y))))
/// ```
///
/// All points are merged **once** into a density canvas whose pixels
/// hold partial aggregates (count in `v1`, weight sum in `v2`) — "the
/// size of the input for the join is drastically reduced". The
/// blend–mask–scatter chain over the polygon table then executes as a
/// *single instanced polygon draw* whose fragment shader reads the
/// density texel, exactly RasterJoin's kernel: interior fragments add
/// the pixel's partial aggregate to their polygon's slot, conservative
/// boundary fragments refine per exact point location (charged to the
/// device as compute edge tests).
///
/// The fragment kernel runs **chunk-parallel on the device's worker
/// pool**: contiguous polygon chunks are claimed by executors, each
/// accumulating into its own per-record slots (a record's fragments are
/// visited by exactly one executor, in the sequential emission order),
/// and the chunks stitch back in order — so counts *and* float sums are
/// bit-identical to the sequential run at any thread count.
pub fn aggregate_join_rasterjoin(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
) -> GroupAggregates {
    let n = polygons.len();
    let mut out = GroupAggregates {
        counts: vec![0; n],
        sums: vec![0.0; n],
    };
    if n == 0 || points.is_empty() {
        return out;
    }
    // B*[+](C_P): one canvas of partial aggregates.
    let density = crate::source::render_points(dev, vp, points);
    // Fused B[⊙] + M[Mp] + D*[γc] over the whole polygon table.
    rasterjoin_kernel(dev, vp, &density, polygons, None, &mut out);
    out
}

/// The RasterJoin fragment kernel shared by the unfiltered and
/// index-pruned plans (their aggregates are contractually
/// bit-identical, so the kernel exists exactly once): chunk-parallel
/// fragment visitation, interior fragments folding the density partial
/// aggregates, conservative boundary fragments refining per exact point
/// entry. With `records = Some(subset)` only `polys[subset[k]]` are
/// rasterized (no cloning — the pipeline's indexed visitor walks the
/// originals) and each position's aggregates land in the record's
/// global slot of `out`.
fn rasterjoin_kernel(
    dev: &mut Device,
    vp: Viewport,
    density: &crate::canvas::Canvas,
    polys: &[Polygon],
    records: Option<&[u32]>,
    out: &mut GroupAggregates,
) {
    let width = vp.width();
    let sel = move |k: usize| records.map_or(k, |r| r[k] as usize);
    let n = records.map_or(polys.len(), <[u32]>::len);
    dev.pipeline().note_upload(
        (0..n)
            .map(|k| (polys[sel(k)].num_vertices() * 16) as u64)
            .sum(),
    );
    /// Per-chunk partial aggregates (slots for `range` only).
    struct ChunkAcc {
        range: std::ops::Range<usize>,
        counts: Vec<u64>,
        sums: Vec<f64>,
        refine_edges: u64,
    }
    let init = |range: std::ops::Range<usize>| ChunkAcc {
        counts: vec![0; range.len()],
        sums: vec![0.0; range.len()],
        range,
        refine_edges: 0,
    };
    let visit = |acc: &mut ChunkAcc, record: u32, frag: canvas_raster::Frag| {
        let j = record as usize;
        let local = j - acc.range.start;
        if frag.boundary {
            // Boundary pixel: exact per-point refinement against the
            // vector polygon (the hybrid-index contract).
            let pixel = frag.y * width + frag.x;
            let poly = &polys[sel(j)];
            for e in density.boundary().points_at(pixel) {
                acc.refine_edges += poly.num_vertices() as u64;
                if poly.contains_closed(e.loc) {
                    acc.counts[local] += 1;
                    acc.sums[local] += e.weight as f64;
                }
            }
        } else if let Some(info) = density.texel(frag.x, frag.y).get(0) {
            // Uniform interior pixel: the whole pixel is inside, so
            // the partial aggregate applies wholesale.
            acc.counts[local] += info.v1 as u64;
            acc.sums[local] += info.v2 as f64;
        }
    };
    let chunks = match records {
        None => dev
            .pipeline()
            .visit_polygon_fragments(&vp, polys, true, init, visit),
        Some(r) => dev
            .pipeline()
            .visit_polygon_fragments_indexed(&vp, polys, r, true, init, visit),
    };
    let mut refine_edges = 0u64;
    for acc in chunks {
        for (k, (&c, &s)) in acc.counts.iter().zip(&acc.sums).enumerate() {
            let global = sel(acc.range.start + k);
            out.counts[global] = c;
            out.sums[global] = s;
        }
        refine_edges += acc.refine_edges;
    }
    dev.pipeline().note_compute_edge_tests(refine_edges);
}

/// Index-accelerated RasterJoin (ROADMAP "Index-accelerated
/// aggregation"): [`aggregate_join_rasterjoin`] with an **MBR
/// pre-filter** served by a CSR grid index over the point side —
/// polygons whose MBR holds no candidate points are pruned before any
/// rasterization (their aggregates are exactly zero), so the fragment
/// kernel only walks polygons that can contribute.
///
/// The density **pre-render goes through a fused chain**
/// ([`run_points_chain`](crate::ops::chain::run_points_chain)): a Value
/// stage nulls density texels outside the surviving polygons' union
/// MBR (inflated by one pixel) *in-stream*, tile by tile, so the
/// restricted density canvas never exists in an intermediate
/// materialized form. This is safe for exactness: interior fragments
/// read the density texel only at pixels whose **center** lies inside
/// their polygon — hence inside the union MBR, where the Value stage is
/// the identity — and boundary fragments refine against the exact
/// point entries, which the chain keeps untouched. Bit-identical
/// aggregates to the unfiltered kernel (asserted in tests).
pub fn aggregate_join_rasterjoin_pruned(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
    index: &canvas_geom::grid::GridIndex,
) -> GroupAggregates {
    let n = polygons.len();
    let mut out = GroupAggregates {
        counts: vec![0; n],
        sums: vec![0.0; n],
    };
    if n == 0 || points.is_empty() {
        return out;
    }
    // Filter step: the grid index returns a superset of the points in
    // each polygon's MBR, so an empty candidate set proves the
    // polygon's aggregates are zero.
    // `query_iter` short-circuits on the first candidate — the test is
    // pure emptiness, so the collect/sort/dedup of `query` is waste.
    let survivors: Vec<u32> = polygons
        .iter()
        .enumerate()
        .filter(|(_, p)| index.query_iter(&p.bbox()).next().is_some())
        .map(|(j, _)| j as u32)
        .collect();
    if survivors.is_empty() {
        return out;
    }
    let mut region = canvas_geom::BBox::EMPTY;
    for &j in &survivors {
        region = region.union(&polygons[j as usize].bbox());
    }
    // One pixel of slack so floating-point edge cases at the MBR rim
    // can never clip a pixel center the kernel reads.
    let pixel_pad = (vp.world().width() / vp.width().max(1) as f64)
        .max(vp.world().height() / vp.height().max(1) as f64);
    let region = region.inflated(pixel_pad);
    let chain = crate::ops::chain::CanvasChain::new().value(move |p, t| {
        if region.contains(p) {
            t
        } else {
            crate::info::Texel::null()
        }
    });
    let density = crate::ops::chain::run_points_chain(dev, vp, points, &chain).canvas;

    rasterjoin_kernel(dev, vp, &density, polygons, Some(&survivors), &mut out);
    out
}

/// The same query evaluated literally as the algebra expression — one
/// blend + mask + scatter chain per polygon canvas. Semantically
/// identical to [`aggregate_join_rasterjoin`]; kept as the unfused plan
/// for the plan-comparison ablation (DESIGN.md A3/E6).
pub fn aggregate_join_blend_plan(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
) -> GroupAggregates {
    let n = polygons.len();
    let mut out = GroupAggregates {
        counts: vec![0; n],
        sums: vec![0.0; n],
    };
    if n == 0 || points.is_empty() {
        return out;
    }
    let density = crate::source::render_points(dev, vp, points);
    let gvp = group_viewport(n as u32);
    for j in 0..n {
        let cy = crate::source::render_polygon(dev, vp, polygons, j, j as u32);
        let merged = crate::ops::blend(dev, &density, &cy, BlendFn::PointOverArea);
        let masked = crate::ops::mask(dev, &merged, &MaskSpec::PointInAreas(CountCond::Ge(1)));
        let slots = map_scatter(
            dev,
            &masked,
            &ValueMap::area_id_slot(),
            gvp,
            BlendFn::Accumulate,
        );
        if let Some(info) = slots.texel(j as u32, 0).get(0) {
            out.counts[j] = info.v1 as u64;
            out.sums[j] = info.v2 as f64;
        }
    }
    out
}

/// The traditional plan: materialize the join result, then aggregate
/// (the strategy RasterJoin improves on — kept for the E6 plan
/// comparison).
pub fn aggregate_join_materialized(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
) -> GroupAggregates {
    let pairs = super::join::join_points_polygons(dev, vp, points, polygons);
    let n = polygons.len();
    let mut out = GroupAggregates {
        counts: vec![0; n],
        sums: vec![0.0; n],
    };
    for (p, y) in pairs {
        out.counts[y as usize] += 1;
        out.sums[y as usize] += points.weights[p as usize] as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};
    use std::sync::Arc;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn count_matches_brute_force() {
        let mut dev = Device::nvidia();
        let pts = random_points(500, 21);
        let q = square(20.0, 20.0, 45.0);
        let expect = pts.iter().filter(|p| q.contains_closed(**p)).count() as u64;
        let got = count_points_in_polygon(&mut dev, vp(), &PointBatch::from_points(pts), &q);
        assert_eq!(got, expect);
        assert!(expect > 0);
    }

    #[test]
    fn sum_matches_brute_force() {
        let mut dev = Device::nvidia();
        let pts = random_points(300, 77);
        let weights: Vec<f32> = (0..pts.len()).map(|i| (i % 10) as f32).collect();
        let q = square(10.0, 30.0, 50.0);
        let expect: f64 = pts
            .iter()
            .zip(&weights)
            .filter(|(p, _)| q.contains_closed(**p))
            .map(|(_, w)| *w as f64)
            .sum();
        let got =
            sum_points_in_polygon(&mut dev, vp(), &PointBatch::with_weights(pts, weights), &q);
        assert_eq!(got, expect);
    }

    #[test]
    fn minmax_over_selection() {
        let mut dev = Device::nvidia();
        let pts = vec![
            Point::new(25.0, 25.0),
            Point::new(30.0, 30.0),
            Point::new(90.0, 90.0), // outside
        ];
        let weights = vec![5.0, 2.0, 100.0];
        let q = square(20.0, 20.0, 20.0);
        let mm =
            minmax_points_in_polygon(&mut dev, vp(), &PointBatch::with_weights(pts, weights), &q);
        assert_eq!(mm, Some((2.0, 5.0)));
    }

    #[test]
    fn minmax_empty_selection() {
        let mut dev = Device::nvidia();
        let pts = vec![Point::new(90.0, 90.0)];
        let q = square(10.0, 10.0, 20.0);
        let mm = minmax_points_in_polygon(&mut dev, vp(), &PointBatch::from_points(pts), &q);
        assert_eq!(mm, None);
    }

    #[test]
    fn rasterjoin_group_by_matches_brute_force() {
        let mut dev = Device::nvidia();
        let pts = random_points(400, 33);
        let weights: Vec<f32> = (0..pts.len()).map(|i| 1.0 + (i % 5) as f32).collect();
        let polys: AreaSource = Arc::new(vec![
            square(5.0, 5.0, 40.0),
            square(50.0, 50.0, 45.0),
            square(30.0, 30.0, 40.0), // overlaps both
        ]);
        let batch = PointBatch::with_weights(pts.clone(), weights.clone());
        let got = aggregate_join_rasterjoin(&mut dev, vp(), &batch, &polys);
        for (j, poly) in polys.iter().enumerate() {
            let expect_n = pts.iter().filter(|p| poly.contains_closed(**p)).count() as u64;
            let expect_s: f64 = pts
                .iter()
                .zip(&weights)
                .filter(|(p, _)| poly.contains_closed(**p))
                .map(|(_, w)| *w as f64)
                .sum();
            assert_eq!(got.counts[j], expect_n, "count group {j}");
            assert!(
                (got.sums[j] - expect_s).abs() < 1e-3,
                "sum group {j}: {} vs {expect_s}",
                got.sums[j]
            );
        }
    }

    #[test]
    fn rasterjoin_equals_materialized_plan() {
        // Three plans for the same query must agree (Section 7's plan-
        // choice argument depends on it).
        let mut dev = Device::nvidia();
        let pts = random_points(250, 55);
        let polys: AreaSource = Arc::new(vec![square(10.0, 10.0, 35.0), square(40.0, 45.0, 50.0)]);
        let batch = PointBatch::from_points(pts);
        let a = aggregate_join_rasterjoin(&mut dev, vp(), &batch, &polys);
        let b = aggregate_join_materialized(&mut dev, vp(), &batch, &polys);
        let c = aggregate_join_blend_plan(&mut dev, vp(), &batch, &polys);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn fused_rasterjoin_cheaper_than_blend_plan() {
        // The fusion must reduce modeled cost (fewer passes, no
        // full-screen blends per polygon).
        let pts = random_points(2000, 99);
        let polys: AreaSource = Arc::new(vec![
            square(5.0, 5.0, 40.0),
            square(50.0, 5.0, 40.0),
            square(5.0, 50.0, 40.0),
            square(50.0, 50.0, 40.0),
        ]);
        let batch = PointBatch::from_points(pts);
        let mut dev_fused = Device::nvidia();
        let a = aggregate_join_rasterjoin(&mut dev_fused, vp(), &batch, &polys);
        let mut dev_plan = Device::nvidia();
        let b = aggregate_join_blend_plan(&mut dev_plan, vp(), &batch, &polys);
        assert_eq!(a, b);
        assert!(
            dev_fused.modeled_time() < dev_plan.modeled_time(),
            "fused {} vs unfused {}",
            dev_fused.modeled_time(),
            dev_plan.modeled_time()
        );
    }

    #[test]
    fn rasterjoin_bit_identical_across_thread_counts() {
        // The chunk-parallel fragment kernel must reproduce the
        // sequential counts AND float sums exactly — each record's
        // fragments fold on one executor in sequential order.
        let pts = random_points(800, 7);
        let weights: Vec<f32> = (0..pts.len())
            .map(|i| 0.1 + (i % 13) as f32 * 0.7)
            .collect();
        let polys: AreaSource = Arc::new(vec![
            square(5.0, 5.0, 40.0),
            square(50.0, 50.0, 45.0),
            square(30.0, 30.0, 40.0),
            square(10.0, 60.0, 25.0),
            square(60.0, 10.0, 25.0),
        ]);
        let batch = PointBatch::with_weights(pts, weights);
        let mut seq_dev = Device::cpu();
        let reference = aggregate_join_rasterjoin(&mut seq_dev, vp(), &batch, &polys);
        for threads in [2usize, 3, 8] {
            let mut dev = Device::cpu_parallel(threads);
            let got = aggregate_join_rasterjoin(&mut dev, vp(), &batch, &polys);
            assert_eq!(reference.counts, got.counts, "counts at {threads} threads");
            // Bit-identical floats, not approximate.
            let a: Vec<u64> = reference.sums.iter().map(|s| s.to_bits()).collect();
            let b: Vec<u64> = got.sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(a, b, "sums diverge at {threads} threads");
            assert_eq!(seq_dev.stats(), dev.stats(), "stats at {threads} threads");
        }
    }

    #[test]
    fn pruned_rasterjoin_equals_unfiltered() {
        // The MBR pre-filter (grid index over the point side) plus the
        // chain-restricted density pre-render must reproduce the
        // unfiltered kernel bit-for-bit — including polygons whose MBR
        // holds no points at all (pruned, exactly zero).
        // Points concentrated in the lower-left quadrant so an
        // in-viewport polygon can still be point-free (prunable).
        let pts: Vec<Point> = random_points(500, 13)
            .into_iter()
            .map(|p| Point::new(p.x * 0.4, p.y * 0.4))
            .collect();
        let weights: Vec<f32> = (0..pts.len()).map(|i| 0.5 + (i % 7) as f32).collect();
        let polys: AreaSource = Arc::new(vec![
            square(5.0, 5.0, 20.0),
            square(20.0, 20.0, 18.0),
            square(10.0, 25.0, 20.0),
            // Inside the viewport but holding no points: the MBR filter
            // prunes it, so its fragments are never rasterized (the
            // unfiltered kernel walks them all).
            square(60.0, 60.0, 30.0),
        ]);
        let batch = PointBatch::with_weights(pts.clone(), weights);
        // Grid index over the point side (what SpatialTable::grid_index
        // builds for a point table).
        let extent = pts
            .iter()
            .fold(canvas_geom::BBox::EMPTY, |b, p| b.union_point(*p))
            .inflated(1e-9);
        let mut builder =
            canvas_geom::grid::GridIndexBuilder::with_target_occupancy(extent, pts.len().max(1), 2);
        for (i, p) in pts.iter().enumerate() {
            builder.insert(i as u32, &canvas_geom::BBox::new(*p, *p));
        }
        let index = builder.build();

        for threads in [1usize, 3] {
            let mut dev_ref = Device::cpu_parallel(threads);
            let reference = aggregate_join_rasterjoin(&mut dev_ref, vp(), &batch, &polys);
            let mut dev = Device::cpu_parallel(threads);
            let got = aggregate_join_rasterjoin_pruned(&mut dev, vp(), &batch, &polys, &index);
            assert_eq!(reference.counts, got.counts, "counts at {threads} threads");
            let a: Vec<u64> = reference.sums.iter().map(|s| s.to_bits()).collect();
            let b: Vec<u64> = got.sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(a, b, "sums diverge at {threads} threads");
            assert_eq!(got.counts[3], 0, "pruned polygon aggregates to zero");
            // The pre-filter must cut real work: fewer fragments walked.
            assert!(
                dev.stats().fragments < dev_ref.stats().fragments,
                "pruned kernel should rasterize less: {} vs {}",
                dev.stats().fragments,
                dev_ref.stats().fragments
            );
        }
    }

    #[test]
    fn pruned_rasterjoin_all_pruned_and_empty_inputs() {
        let pts = random_points(50, 3);
        let extent = pts
            .iter()
            .fold(canvas_geom::BBox::EMPTY, |b, p| b.union_point(*p))
            .inflated(1e-9);
        let mut builder =
            canvas_geom::grid::GridIndexBuilder::with_target_occupancy(extent, pts.len(), 2);
        for (i, p) in pts.iter().enumerate() {
            builder.insert(i as u32, &canvas_geom::BBox::new(*p, *p));
        }
        let index = builder.build();
        let far: AreaSource = Arc::new(vec![Polygon::simple(vec![
            Point::new(900.0, 900.0),
            Point::new(910.0, 900.0),
            Point::new(905.0, 910.0),
        ])
        .unwrap()]);
        let mut dev = Device::cpu();
        let g = aggregate_join_rasterjoin_pruned(
            &mut dev,
            vp(),
            &PointBatch::from_points(pts),
            &far,
            &index,
        );
        assert_eq!(g.counts, vec![0]);
        assert_eq!(g.sums, vec![0.0]);
        // Nothing survived: no polygon rasterization at all.
        assert_eq!(dev.stats().fragments, 0);
        let g = aggregate_join_rasterjoin_pruned(
            &mut dev,
            vp(),
            &PointBatch::from_points(vec![]),
            &far,
            &index,
        );
        assert_eq!(g.counts, vec![0]);
    }

    #[test]
    fn avg_helper() {
        let g = GroupAggregates {
            counts: vec![4, 0],
            sums: vec![10.0, 0.0],
        };
        assert_eq!(g.avg(0), Some(2.5));
        assert_eq!(g.avg(1), None);
        assert_eq!(g.avg(9), None);
    }

    #[test]
    fn empty_inputs_give_zero_groups() {
        let mut dev = Device::nvidia();
        let empty: AreaSource = Arc::new(vec![]);
        let batch = PointBatch::from_points(random_points(10, 9));
        let g = aggregate_join_rasterjoin(&mut dev, vp(), &batch, &empty);
        assert!(g.counts.is_empty());
        let polys: AreaSource = Arc::new(vec![square(0.0, 0.0, 10.0)]);
        let g = aggregate_join_rasterjoin(&mut dev, vp(), &PointBatch::from_points(vec![]), &polys);
        assert_eq!(g.counts, vec![0]);
    }
}
