//! k-nearest-neighbor queries (paper Section 4.4).
//!
//! The paper's workflow: build a collection of circles `C_X` of
//! increasing radii centered at the query point (each circle's id *is*
//! its radius), run the join–group-by aggregation to count points per
//! circle, mask the counts to find a radius enclosing exactly `k`
//! points, then finish with a distance-based selection at that radius.
//!
//! "Conceptually there is an infinite number of circles, but in practice
//! a finite number of circles can be created with small increments in
//! radii up to a maximum radius" — we use a geometric ladder plus an
//! exact final cut, so the returned neighbors are exact.

use crate::canvas::PointBatch;
use crate::device::Device;
use crate::queries::selection::{select_points_within_distance_exact, PointSelection};
use canvas_geom::{BBox, Point};
use canvas_raster::Viewport;

/// Number of circles in the radius ladder.
const LADDER_STEPS: usize = 8;

/// A viewport whose world box covers the whole metric ball of radius `r`
/// around `x`. Rendering the distance selection on this viewport means
/// viewport clipping can never drop a candidate within distance `r` —
/// exactness is resolution-independent, so reusing the caller's pixel
/// dimensions is fine.
fn ball_viewport(vp: Viewport, x: Point, r: f64) -> Viewport {
    let m = r * 1.02 + 1e-9;
    Viewport::new(
        BBox::new(Point::new(x.x - m, x.y - m), Point::new(x.x + m, x.y + m)),
        vp.width().max(1),
        vp.height().max(1),
    )
}

/// `SELECT * FROM D_P WHERE Location ∈ KNN(X, k)` — exact k nearest
/// neighbors of `x` (ties broken by record id, mirroring the paper's
/// total-order assumption via infinitesimal perturbation).
///
/// Returns record ids ordered by increasing distance.
pub fn knn(dev: &mut Device, vp: Viewport, data: &PointBatch, x: Point, k: usize) -> Vec<u32> {
    if k == 0 || data.is_empty() {
        return Vec::new();
    }
    let k = k.min(data.len());

    // Maximum useful radius: the extent diagonal.
    let w = vp.world();
    let r_max = w.min.dist(w.max).max(1e-9);

    // The circle ladder C_X: radii r_max/2^i, i = LADDER_STEPS-1 .. 0.
    // For each circle, the aggregation counts the enclosed points; the
    // selection at the smallest viable radius is kept and reused below —
    // no second render of the same circle.
    let mut chosen: Option<PointSelection> = None;
    for i in (0..LADDER_STEPS).rev() {
        let r = r_max / (1u32 << i) as f64;
        let sel = select_points_within_distance_exact(dev, ball_viewport(vp, x, r), data, x, r);
        if sel.records.len() >= k {
            chosen = Some(sel);
            break;
        }
    }

    // Exact cut over the break-iteration selection.
    let mut candidates: Vec<(f64, u32)> = match &chosen {
        Some(sel) => sel
            .canvas
            .boundary()
            .points()
            .iter()
            .map(|e| (e.loc.dist_sq(x), e.record))
            .collect(),
        None => Vec::new(),
    };
    // Fewer than k points within r_max of x (the ladder never broke, or
    // the ball held duplicates of fewer records): fall back to a scan.
    if candidates.len() < k {
        candidates = data
            .points
            .iter()
            .zip(&data.ids)
            .map(|(p, id)| (p.dist_sq(x), *id))
            .collect();
    }
    candidates.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    candidates.truncate(k);
    candidates.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn brute_knn(pts: &[Point], x: Point, k: usize) -> Vec<u32> {
        let mut d: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.dist_sq(x), i as u32))
            .collect();
        d.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        d.truncate(k);
        d.into_iter().map(|(_, i)| i).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let mut dev = Device::nvidia();
        let pts = random_points(300, 2024);
        let batch = PointBatch::from_points(pts.clone());
        for k in [1, 5, 20] {
            let got = knn(&mut dev, vp(), &batch, Point::new(50.0, 50.0), k);
            let want = brute_knn(&pts, Point::new(50.0, 50.0), k);
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn knn_query_point_off_center() {
        let mut dev = Device::nvidia();
        let pts = random_points(200, 4);
        let batch = PointBatch::from_points(pts.clone());
        let x = Point::new(5.0, 95.0);
        let got = knn(&mut dev, vp(), &batch, x, 7);
        assert_eq!(got, brute_knn(&pts, x, 7));
    }

    #[test]
    fn knn_k_larger_than_data() {
        let mut dev = Device::nvidia();
        let pts = random_points(5, 8);
        let batch = PointBatch::from_points(pts.clone());
        let got = knn(&mut dev, vp(), &batch, Point::new(50.0, 50.0), 50);
        assert_eq!(got.len(), 5);
        assert_eq!(got, brute_knn(&pts, Point::new(50.0, 50.0), 5));
    }

    #[test]
    fn knn_edge_cases() {
        let mut dev = Device::nvidia();
        let batch = PointBatch::from_points(random_points(10, 3));
        assert!(knn(&mut dev, vp(), &batch, Point::new(1.0, 1.0), 0).is_empty());
        let empty = PointBatch::from_points(vec![]);
        assert!(knn(&mut dev, vp(), &empty, Point::new(1.0, 1.0), 3).is_empty());
    }

    #[test]
    fn knn_sees_neighbors_outside_the_viewport() {
        // Regression: the ladder used to render on the caller's viewport,
        // so with >= k in-view points the clipped selection looked
        // complete and a strictly nearer out-of-view point was dropped.
        let mut dev = Device::nvidia();
        let pts = vec![
            Point::new(80.0, 50.0),  // in view, dist 15 from x
            Point::new(105.0, 50.0), // outside the 0..100 viewport, dist 10
            Point::new(10.0, 10.0),
            Point::new(110.0, 90.0),
        ];
        let batch = PointBatch::from_points(pts.clone());
        let x = Point::new(95.0, 50.0);
        assert_eq!(knn(&mut dev, vp(), &batch, x, 1), vec![1]);
        assert_eq!(knn(&mut dev, vp(), &batch, x, 2), brute_knn(&pts, x, 2));
    }

    #[test]
    fn knn_renders_the_chosen_radius_once() {
        // Regression: the ladder used to discard the selection at the
        // break radius and re-render it identically after the loop —
        // exactly doubling the pass count when the first rung suffices.
        let mut dev = Device::nvidia();
        // A tight cluster at x: the smallest ladder radius (~1.1 world
        // units) already holds >= k points, so knn needs one selection.
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::new(50.0 + 0.05 * i as f64, 50.0))
            .collect();
        let batch = PointBatch::from_points(pts);
        let x = Point::new(50.0, 50.0);

        let before = dev.stats();
        let _ = select_points_within_distance_exact(&mut dev, vp(), &batch, x, 1.0);
        let per = dev.stats().delta(&before).passes;
        assert!(per > 0);

        let before = dev.stats();
        let got = knn(&mut dev, vp(), &batch, x, 3);
        let knn_passes = dev.stats().delta(&before).passes;
        assert_eq!(got, vec![0, 1, 2]);
        assert!(
            knn_passes < 2 * per,
            "chosen radius rendered twice: {knn_passes} passes vs {per} per selection"
        );
    }

    #[test]
    fn knn_ordered_by_distance() {
        let mut dev = Device::nvidia();
        let pts = random_points(100, 66);
        let batch = PointBatch::from_points(pts.clone());
        let x = Point::new(30.0, 70.0);
        let got = knn(&mut dev, vp(), &batch, x, 10);
        let dists: Vec<f64> = got.iter().map(|&i| pts[i as usize].dist(x)).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "not sorted: {dists:?}");
        }
    }
}
