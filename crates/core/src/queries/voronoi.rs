//! Voronoi diagram as a stored procedure (paper Section 4.5).
//!
//! `ComputeVoronoi` builds the diagram incrementally with nothing but the
//! Value Transform operator: for each site `i`, the pass
//!
//! ```text
//! f(x, y, s)[2] = (i, d², 0)              if s = ∅
//!              = (s[2][0], s[2][1], 0)    if s[2][1] < d²
//!              = (i, d², 0)               otherwise
//! ```
//!
//! claims every location that is closer to site `i` than to its current
//! owner. After all sites are processed, `s[2][0]` at a location is the
//! nearest site — the discrete Voronoi diagram (the classic GPU
//! technique the paper maps onto its algebra).
//!
//! Exactly-equidistant locations go to the smaller site id, so the
//! diagram is the pointwise minimum over `(d², id)` — a function of the
//! site set alone, independent of the insertion order.

use crate::canvas::Canvas;
use crate::device::Device;
use crate::info::{DimInfo, Texel};
use crate::ops::value_transform;
use canvas_geom::Point;
use canvas_raster::Viewport;

/// Computes the discrete Voronoi diagram of `sites` over the viewport.
///
/// The returned canvas stores, at every location, `s[2] = (site, d², 0)`
/// for the nearest site.
pub fn compute_voronoi(dev: &mut Device, vp: Viewport, sites: &[Point]) -> Canvas {
    let mut canvas = Canvas::empty(vp);
    for (i, site) in sites.iter().enumerate() {
        let site = *site;
        let id = i as u32;
        canvas = value_transform(dev, &canvas, move |p, s| {
            let d2 = p.dist_sq(site) as f32;
            match s.get(2) {
                None => Texel::area(id, d2, 0.0),
                // Strictly closer owners keep their claim; exact ties go
                // to the smaller site id (pointwise min over (d², id)).
                Some(cur) if cur.v1 < d2 || (cur.v1 == d2 && cur.id < id) => {
                    let mut t = Texel::null();
                    t.set(2, DimInfo::new(cur.id, cur.v1, 0.0));
                    t
                }
                Some(_) => Texel::area(id, d2, 0.0),
            }
        });
    }
    canvas
}

/// Nearest site of a world point according to the diagram canvas.
pub fn voronoi_site_at(canvas: &Canvas, p: Point) -> Option<u32> {
    canvas.value_at(p).get(2).map(|a| a.id)
}

/// Per-site cell areas (pixel-integrated) — a quick way to sanity-check
/// the diagram and a useful analytic in its own right.
pub fn voronoi_cell_areas(canvas: &Canvas, num_sites: usize) -> Vec<f64> {
    let vp = canvas.viewport();
    let pixel_area = vp.pixel_width() * vp.pixel_height();
    let mut areas = vec![0.0; num_sites];
    for (_, _, t) in canvas.non_null() {
        if let Some(a) = t.get(2) {
            if (a.id as usize) < num_sites {
                areas[a.id as usize] += pixel_area;
            }
        }
    }
    areas
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            n,
            n,
        )
    }

    fn brute_nearest(sites: &[Point], p: Point) -> u32 {
        sites
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                p.dist_sq(**a)
                    .partial_cmp(&p.dist_sq(**b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i as u32)
            .expect("non-empty sites")
    }

    #[test]
    fn voronoi_matches_brute_force_at_pixel_centers() {
        let mut dev = Device::nvidia();
        let sites = vec![
            Point::new(20.0, 20.0),
            Point::new(80.0, 30.0),
            Point::new(50.0, 80.0),
            Point::new(10.0, 90.0),
        ];
        let canvas = compute_voronoi(&mut dev, vp(48), &sites);
        let v = canvas.viewport();
        for y in 0..v.height() {
            for x in 0..v.width() {
                let c = v.pixel_center(x, y);
                let got = canvas.texel(x, y).get(2).unwrap().id;
                let want = brute_nearest(&sites, c);
                // Equidistant boundaries may tie either way; accept both
                // when the distances are numerically equal.
                if got != want {
                    let dg = c.dist_sq(sites[got as usize]);
                    let dw = c.dist_sq(sites[want as usize]);
                    assert!(
                        ((dg - dw).abs() as f32) <= f32::EPSILON * (dg.max(dw) as f32),
                        "wrong site at ({x},{y}): got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_site_owns_everything() {
        let mut dev = Device::nvidia();
        let canvas = compute_voronoi(&mut dev, vp(16), &[Point::new(50.0, 50.0)]);
        assert_eq!(canvas.non_null_count(), 16 * 16);
        for (_, _, t) in canvas.non_null() {
            assert_eq!(t.get(2).unwrap().id, 0);
        }
    }

    #[test]
    fn no_sites_empty_canvas() {
        let mut dev = Device::nvidia();
        let canvas = compute_voronoi(&mut dev, vp(8), &[]);
        assert!(canvas.is_empty());
    }

    #[test]
    fn site_lookup_and_areas() {
        let mut dev = Device::nvidia();
        let sites = vec![Point::new(25.0, 50.0), Point::new(75.0, 50.0)];
        let canvas = compute_voronoi(&mut dev, vp(32), &sites);
        assert_eq!(voronoi_site_at(&canvas, Point::new(10.0, 50.0)), Some(0));
        assert_eq!(voronoi_site_at(&canvas, Point::new(90.0, 50.0)), Some(1));
        let areas = voronoi_cell_areas(&canvas, 2);
        // Symmetric sites: equal halves (within pixel resolution).
        let total: f64 = areas.iter().sum();
        assert!((total - 100.0 * 100.0).abs() < 1e-6);
        assert!((areas[0] - areas[1]).abs() / total < 0.05);
    }

    #[test]
    fn incremental_insertion_order_irrelevant() {
        let mut dev = Device::nvidia();
        // Sites in generic position: round coordinates like (30,30) /
        // (20,80) put pairwise bisectors exactly through rational pixel
        // centers, and such ties break by (label-dependent) site id —
        // only a tie-free configuration relabels exactly.
        let sites_a = vec![
            Point::new(30.1, 29.7),
            Point::new(70.3, 71.1),
            Point::new(19.6, 80.2),
        ];
        let mut sites_b = sites_a.clone();
        sites_b.reverse();
        let ca = compute_voronoi(&mut dev, vp(24), &sites_a);
        let cb = compute_voronoi(&mut dev, vp(24), &sites_b);
        // Same partition modulo the site relabeling (b is reversed):
        // no pixel center in this configuration is exactly equidistant
        // between two sites, so the deterministic (d², id) tie-break
        // makes the equality exact.
        for y in 0..24 {
            for x in 0..24 {
                let a = ca.texel(x, y).get(2).unwrap().id;
                let b = cb.texel(x, y).get(2).unwrap().id;
                assert_eq!(a, 2 - b, "relabel mismatch at ({x},{y})");
            }
        }
    }

    #[test]
    fn equidistant_pixels_go_to_the_smaller_site_id() {
        // Regression: `cur.v1 < d2` let a later-inserted site steal
        // exactly-equidistant pixels. With 5 pixels over 0..100 the
        // centers sit at x ∈ {10, 30, 50, 70, 90}; the x = 50 column is
        // exactly 30 world units from both sites (30² = 900 is exact in
        // f32), so the whole column must belong to site 0.
        let mut dev = Device::nvidia();
        let sites = vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)];
        let canvas = compute_voronoi(&mut dev, vp(5), &sites);
        for y in 0..5 {
            assert_eq!(canvas.texel(0, y).get(2).unwrap().id, 0);
            assert_eq!(canvas.texel(1, y).get(2).unwrap().id, 0);
            let tie = canvas.texel(2, y).get(2).unwrap();
            assert_eq!(tie.id, 0, "tie column stolen by the later site");
            assert_eq!(canvas.texel(3, y).get(2).unwrap().id, 1);
            assert_eq!(canvas.texel(4, y).get(2).unwrap().id, 1);
        }
    }
}
