//! Spatio-temporal queries: the workload class of the paper's reference
//! system \[11\] (a GPU index for "interactive spatio-temporal queries
//! over historical data") and of its own evaluation, which varies input
//! size by pickup-*time* range.
//!
//! Time composes with the canvas algebra relationally: a temporal
//! predicate is an ordinary attribute filter that runs *before* the
//! spatial operators (exactly the optimizer scenario Section 6 raises —
//! "the optimizer might choose to first filter based on another
//! attribute, say time, before performing a spatial operation", which is
//! why the paper benchmarks the un-indexed refinement step). The spatial
//! part is the unchanged Blend+Mask pipeline.

use crate::canvas::PointBatch;
use crate::device::Device;
use crate::queries::selection::select_points_in_polygon;
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;
use canvas_raster::Viewport;

/// A timestamped point data set (timestamps in arbitrary ticks).
#[derive(Clone, Debug, Default)]
pub struct TemporalPoints {
    pub points: Vec<Point>,
    pub timestamps: Vec<u32>,
    pub weights: Vec<f32>,
}

impl TemporalPoints {
    pub fn new(points: Vec<Point>, timestamps: Vec<u32>) -> Self {
        assert_eq!(points.len(), timestamps.len());
        let n = points.len();
        TemporalPoints {
            points,
            timestamps,
            weights: vec![1.0; n],
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The temporal filter: records with `t ∈ [t0, t1)`, keeping the
    /// original record ids (so spatial results join back to the table).
    pub fn in_window(&self, t0: u32, t1: u32) -> PointBatch {
        let mut batch = PointBatch::default();
        for i in 0..self.len() {
            let t = self.timestamps[i];
            if t >= t0 && t < t1 {
                batch.points.push(self.points[i]);
                batch.ids.push(i as u32);
                batch.weights.push(self.weights[i]);
            }
        }
        batch
    }
}

/// `SELECT * WHERE Location INSIDE q AND t ∈ [t0, t1)` — temporal filter
/// then spatial refinement (the plan shape of Section 6's setup).
pub fn select_in_polygon_and_window(
    dev: &mut Device,
    vp: Viewport,
    data: &TemporalPoints,
    q: &Polygon,
    t0: u32,
    t1: u32,
) -> Vec<u32> {
    let windowed = data.in_window(t0, t1);
    if windowed.is_empty() {
        return Vec::new();
    }
    select_points_in_polygon(dev, vp, &windowed, q).records
}

/// Time series of per-window counts inside a region: the classic
/// taxi-dashboard query ("pickups in this neighborhood per hour").
/// Returns `num_windows` counts covering `[t_start, t_end)`.
pub fn region_time_series(
    dev: &mut Device,
    vp: Viewport,
    data: &TemporalPoints,
    q: &Polygon,
    t_start: u32,
    t_end: u32,
    num_windows: u32,
) -> Vec<u64> {
    assert!(t_end > t_start && num_windows > 0);
    let span = (t_end - t_start) as u64;
    let mut out = vec![0u64; num_windows as usize];
    // One spatial pass over the full range; the temporal GROUP BY then
    // buckets the *exact point entries* of the result canvas by their
    // record timestamps — spatial work is paid once, not per window.
    let full = data.in_window(t_start, t_end);
    if full.is_empty() {
        return out;
    }
    let sel = select_points_in_polygon(dev, vp, &full, q);
    let last = out.len() - 1;
    for e in sel.canvas.boundary().points() {
        let t = data.timestamps[e.record as usize];
        let w = ((t - t_start) as u64 * num_windows as u64 / span) as usize;
        out[w.min(last)] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    fn sample() -> TemporalPoints {
        let mut state = 11u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let points: Vec<Point> = (0..500)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let timestamps: Vec<u32> = (0..500).map(|_| (next() * 240.0) as u32).collect();
        TemporalPoints::new(points, timestamps)
    }

    #[test]
    fn window_filter_keeps_original_ids() {
        let data = sample();
        let w = data.in_window(60, 120);
        assert!(!w.is_empty());
        for (i, &rec) in w.ids.iter().enumerate() {
            assert_eq!(w.points[i], data.points[rec as usize]);
            let t = data.timestamps[rec as usize];
            assert!((60..120).contains(&t));
        }
    }

    #[test]
    fn spatiotemporal_selection_matches_brute_force() {
        let mut dev = Device::nvidia();
        let data = sample();
        let q = square(20.0, 20.0, 50.0);
        let got = select_in_polygon_and_window(&mut dev, vp(), &data, &q, 0, 120);
        let want: Vec<u32> = (0..data.len())
            .filter(|&i| data.timestamps[i] < 120 && q.contains_closed(data.points[i]))
            .map(|i| i as u32)
            .collect();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn time_series_sums_to_total() {
        let mut dev = Device::nvidia();
        let data = sample();
        let q = square(10.0, 10.0, 70.0);
        let series = region_time_series(&mut dev, vp(), &data, &q, 0, 240, 8);
        assert_eq!(series.len(), 8);
        let total: u64 = series.iter().sum();
        let want = (0..data.len())
            .filter(|&i| data.timestamps[i] < 240 && q.contains_closed(data.points[i]))
            .count() as u64;
        assert_eq!(total, want);
        // Roughly uniform timestamps: no window should hold everything.
        assert!(series.iter().all(|&c| c < want));
    }

    #[test]
    fn time_series_window_assignment_exact() {
        let mut dev = Device::nvidia();
        // Three points, timestamps 0, 100, 239 → windows 0, 3, 7 of 8
        // over [0, 240).
        let data = TemporalPoints::new(
            vec![
                Point::new(50.0, 50.0),
                Point::new(51.0, 51.0),
                Point::new(52.0, 52.0),
            ],
            vec![0, 100, 239],
        );
        let q = square(40.0, 40.0, 20.0);
        let series = region_time_series(&mut dev, vp(), &data, &q, 0, 240, 8);
        assert_eq!(series[0], 1);
        assert_eq!(series[3], 1);
        assert_eq!(series[7], 1);
        assert_eq!(series.iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_window() {
        let mut dev = Device::nvidia();
        let data = sample();
        let q = square(0.0, 0.0, 100.0);
        let got = select_in_polygon_and_window(&mut dev, vp(), &data, &q, 1000, 2000);
        assert!(got.is_empty());
    }
}
