//! Spatial join queries (paper Section 4.2).
//!
//! * **Type I** `points ⋈ polygons` — "the same expression as the
//!   selection, with the single query polygon replaced by a collection":
//!   the point canvas renders once, then each polygon record blends and
//!   masks against it.
//! * **Type II** `polygons ⋈ polygons` — per candidate pair the same
//!   `B[⊕]` + `M[My]` test used by polygonal selection of polygons; an
//!   R-tree MBR filter prunes pairs first (the paper: "can be made more
//!   efficient if spatial indexes are available").
//! * **Type III** `points ⋈ points` (distance join) — the RHS becomes a
//!   collection of circles via the `Circ` utility operator, reducing to
//!   Type I.

use std::sync::Arc;

use crate::canvas::{AreaSource, PointBatch};
use crate::device::Device;
use crate::info::BlendFn;
use crate::ops::{CountCond, MaskSpec};
use canvas_geom::grid::{GridIndex, VisitedMask};
use canvas_geom::polygon::Polygon;
use canvas_geom::rtree::RTree;
use canvas_raster::Viewport;

/// Shared Type I body: the canvas chain per polygon, with a pluggable
/// filter step (`keep`) deciding which polygons get canvas work at all.
/// Both the unpruned and the grid-pruned entry points call this, so the
/// blend/mask formulation can never drift between them.
fn join_points_polygons_filtered(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
    mut keep: impl FnMut(&Polygon) -> bool,
) -> Vec<(u32, u32)> {
    // Render the point side once; every polygon reuses it (this sharing
    // is what the RasterJoin aggregation plan exploits too).
    let cp = crate::source::render_points(dev, vp, points);
    let mut pairs = Vec::new();
    for (j, poly) in polygons.iter().enumerate() {
        if !keep(poly) {
            continue;
        }
        let cy = crate::source::render_polygon(dev, vp, polygons, j, j as u32);
        let merged = crate::ops::blend(dev, &cp, &cy, BlendFn::PointOverArea);
        let sel = crate::ops::mask(dev, &merged, &MaskSpec::PointInAreas(CountCond::Ge(1)));
        for rec in sel.point_records() {
            pairs.push((rec, j as u32));
        }
    }
    pairs.sort_unstable_by_key(|&(p, y)| (y, p));
    pairs
}

/// Type I join: all `(point_record, polygon_record)` pairs with the
/// point inside the polygon (exact). Pairs are sorted by polygon then
/// point record.
pub fn join_points_polygons(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
) -> Vec<(u32, u32)> {
    join_points_polygons_filtered(dev, vp, points, polygons, |_| true)
}

/// [`join_points_polygons`] with CSR-grid candidate pruning: the
/// caller supplies a [`GridIndex`] over the **point** side (ids =
/// point record indices, extent covering every point — e.g.
/// `SpatialTable::grid_index`). Polygons whose MBR cell range holds no
/// candidate points are skipped before any canvas work: no polygon
/// render, no full-screen blend, no mask pass. Results are identical
/// to the unpruned join — a point inside a polygon always registers in
/// a cell overlapping that polygon's MBR, so pruned polygons provably
/// contribute no pairs.
pub fn join_points_polygons_pruned(
    dev: &mut Device,
    vp: Viewport,
    points: &PointBatch,
    polygons: &AreaSource,
    point_index: &GridIndex,
) -> Vec<(u32, u32)> {
    join_points_polygons_filtered(dev, vp, points, polygons, |poly| {
        point_index.query_iter(&poly.bbox()).next().is_some()
    })
}

/// Type II join: all intersecting `(left_record, right_record)` polygon
/// pairs (exact). An STR R-tree over the right side prunes candidates.
pub fn join_polygons_polygons(
    dev: &mut Device,
    vp: Viewport,
    left: &AreaSource,
    right: &AreaSource,
) -> Vec<(u32, u32)> {
    let tree = RTree::bulk_load(right.iter().map(|p| p.bbox()).collect());
    join_polygons_polygons_filtered(dev, vp, left, right, |a, out| {
        tree.query_into(&a.bbox(), out)
    })
}

/// Shared Type II body: per left record, `candidates` fills the
/// MBR-filter result for the right side (any index may serve it); the
/// canvas + exact-refinement test then decides each surviving pair.
/// Single home of the pair test, shared by the R-tree and grid-index
/// entry points.
fn join_polygons_polygons_filtered(
    dev: &mut Device,
    vp: Viewport,
    left: &AreaSource,
    right: &AreaSource,
    mut candidates: impl FnMut(&Polygon, &mut Vec<u32>),
) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    let mut cand = Vec::new();
    for (i, a) in left.iter().enumerate() {
        cand.clear();
        candidates(a, &mut cand);
        if cand.is_empty() {
            continue;
        }
        let ca = crate::source::render_polygon(dev, vp, left, i, i as u32);
        for &j in &cand {
            let cb = crate::source::render_polygon(dev, vp, right, j as usize, j);
            let merged = crate::ops::blend(dev, &ca, &cb, BlendFn::AreaCount);
            let sel = crate::ops::mask(dev, &merged, &MaskSpec::AreaCount(CountCond::Eq(2)));
            if sel.is_empty() {
                continue;
            }
            let certain = sel.non_null().any(|(x, y, _)| sel.cover().get(x, y) >= 2);
            if certain || a.intersects(&right[j as usize]) {
                pairs.push((i as u32, j));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// [`join_polygons_polygons`] with the MBR filter served by a CSR
/// [`GridIndex`] over the **right** side (ids = right record indices)
/// instead of an R-tree — the same flat filter-refine structure the
/// tiled pipeline uses, and the index a `SpatialTable` already carries.
/// Results are identical: the grid returns an MBR-overlap superset and
/// the canvas + exact refinement decide membership.
pub fn join_polygons_polygons_pruned(
    dev: &mut Device,
    vp: Viewport,
    left: &AreaSource,
    right: &AreaSource,
    right_index: &GridIndex,
) -> Vec<(u32, u32)> {
    let mut visited = VisitedMask::new();
    join_polygons_polygons_filtered(dev, vp, left, right, |a, out| {
        right_index.query_into(&a.bbox(), &mut visited, out)
    })
}

/// Type III distance join: pairs `(left_record, right_record)` with
/// `dist ≤ radius` (exact). The right side becomes circles (Section 4.2:
/// "one set of points of the distance join can be converted into a
/// collection of circles"), reducing to Type I; a final metric check
/// removes circle-tessellation slack.
pub fn distance_join(
    dev: &mut Device,
    vp: Viewport,
    left: &PointBatch,
    right: &PointBatch,
    radius: f64,
) -> Vec<(u32, u32)> {
    assert!(radius > 0.0, "distance join radius must be positive");
    let circles: AreaSource = Arc::new(
        right
            .points
            .iter()
            .map(|&c| Polygon::circle(c, radius * 1.01, crate::ops::utility::CIRCLE_SEGMENTS))
            .collect(),
    );
    let candidate_pairs = join_points_polygons(dev, vp, left, &circles);
    let r2 = radius * radius;
    candidate_pairs
        .into_iter()
        .filter(|&(p, c)| left.points[p as usize].dist_sq(right.points[c as usize]) <= r2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn type1_join_matches_brute_force() {
        let mut dev = Device::nvidia();
        let pts = random_points(200, 5);
        let polys: AreaSource = Arc::new(vec![
            square(10.0, 10.0, 30.0),
            square(50.0, 50.0, 40.0),
            square(25.0, 25.0, 30.0), // overlaps both others
        ]);
        let batch = PointBatch::from_points(pts.clone());
        let got = join_points_polygons(&mut dev, vp(), &batch, &polys);
        let mut want = Vec::new();
        for (j, poly) in polys.iter().enumerate() {
            for (i, p) in pts.iter().enumerate() {
                if poly.contains_closed(*p) {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable_by_key(|&(p, y)| (y, p));
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn type1_join_point_in_overlap_appears_twice() {
        let mut dev = Device::nvidia();
        let polys: AreaSource = Arc::new(vec![square(10.0, 10.0, 40.0), square(30.0, 30.0, 40.0)]);
        let batch = PointBatch::from_points(vec![Point::new(35.0, 35.0)]);
        let got = join_points_polygons(&mut dev, vp(), &batch, &polys);
        assert_eq!(got, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn type2_join_matches_brute_force() {
        let mut dev = Device::nvidia();
        let left: AreaSource = Arc::new(vec![
            square(5.0, 5.0, 20.0),
            square(60.0, 60.0, 20.0),
            square(40.0, 5.0, 20.0),
        ]);
        let right: AreaSource = Arc::new(vec![
            square(15.0, 15.0, 20.0), // hits left 0
            square(90.0, 90.0, 5.0),  // disjoint
            square(50.0, 10.0, 20.0), // hits left 2
            square(65.0, 65.0, 5.0),  // inside left 1
        ]);
        let got = join_polygons_polygons(&mut dev, vp(), &left, &right);
        let mut want = Vec::new();
        for (i, a) in left.iter().enumerate() {
            for (j, b) in right.iter().enumerate() {
                if a.intersects(b) {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn distance_join_matches_brute_force() {
        let mut dev = Device::nvidia();
        let lpts = random_points(120, 11);
        let rpts = random_points(15, 17);
        let radius = 12.0;
        let got = distance_join(
            &mut dev,
            vp(),
            &PointBatch::from_points(lpts.clone()),
            &PointBatch::from_points(rpts.clone()),
            radius,
        );
        let mut want = Vec::new();
        for (j, c) in rpts.iter().enumerate() {
            for (i, p) in lpts.iter().enumerate() {
                if p.dist(*c) <= radius {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable_by_key(|&(p, y)| (y, p));
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn pruned_type1_join_equals_unpruned_and_saves_work() {
        let mut dev = Device::nvidia();
        let pts = random_points(300, 23);
        // Many polygons far from every point: the index must prune them
        // without changing the result.
        let mut polys = vec![
            square(10.0, 10.0, 30.0),
            square(50.0, 50.0, 40.0),
            square(25.0, 25.0, 30.0),
        ];
        for k in 0..20 {
            polys.push(square(200.0 + 10.0 * k as f64, 500.0, 5.0));
        }
        let polys: AreaSource = Arc::new(polys);
        let batch = PointBatch::from_points(pts);
        let want = join_points_polygons(&mut dev, vp(), &batch, &polys);
        let index = GridIndex::from_points(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            16,
            16,
            batch.points.iter().enumerate().map(|(i, &p)| (i as u32, p)),
        );
        let mut pruned_dev = Device::nvidia();
        let got = join_points_polygons_pruned(&mut pruned_dev, vp(), &batch, &polys, &index);
        assert_eq!(got, want);
        // The pruned plan must have rendered far fewer polygon canvases.
        assert!(
            pruned_dev.stats().passes < dev.stats().passes,
            "pruning saved no passes: {} vs {}",
            pruned_dev.stats().passes,
            dev.stats().passes
        );
    }

    #[test]
    fn pruned_type2_join_equals_rtree_filtered() {
        let mut dev = Device::nvidia();
        let left: AreaSource = Arc::new(vec![
            square(5.0, 5.0, 20.0),
            square(60.0, 60.0, 20.0),
            square(40.0, 5.0, 20.0),
        ]);
        let right: AreaSource = Arc::new(vec![
            square(15.0, 15.0, 20.0),
            square(90.0, 90.0, 5.0),
            square(50.0, 10.0, 20.0),
            square(65.0, 65.0, 5.0),
        ]);
        let want = join_polygons_polygons(&mut dev, vp(), &left, &right);
        let mut builder = canvas_geom::grid::GridIndexBuilder::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            8,
            8,
        );
        for (j, p) in right.iter().enumerate() {
            builder.insert(j as u32, &p.bbox());
        }
        let index = builder.build();
        let got = join_polygons_polygons_pruned(&mut dev, vp(), &left, &right, &index);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_inputs() {
        let mut dev = Device::nvidia();
        let empty_polys: AreaSource = Arc::new(vec![]);
        let batch = PointBatch::from_points(random_points(10, 1));
        assert!(join_points_polygons(&mut dev, vp(), &batch, &empty_polys).is_empty());
        let empty_pts = PointBatch::from_points(vec![]);
        let polys: AreaSource = Arc::new(vec![square(0.0, 0.0, 50.0)]);
        assert!(join_points_polygons(&mut dev, vp(), &empty_pts, &polys).is_empty());
    }
}
