//! Complex queries over multiple spatial attributes: origin–destination
//! selection (paper Section 4.6).
//!
//! ```text
//! SELECT * FROM D_P WHERE Origin INSIDE Q1 AND Destination INSIDE Q2
//! ```
//!
//! The plan (Figure 8(a)) composes two selections through a Geometric
//! Transform:
//!
//! ```text
//! C_origin ← M[Mp](B[⊙](C_P, C_Q1))
//! C_result ← M[Mp'](B[⊙](G[γd](C_origin), C_Q2))
//! ```
//!
//! where `γd(s) = destination(s[0][0])` looks up each surviving record's
//! destination attribute. The transform is executed over the exact point
//! entries of `C_origin` (the hybrid index is precisely the id→vector
//! link `γd` needs), so the composition stays exact even when several
//! origins share a pixel.

use crate::canvas::PointBatch;
use crate::device::Device;
use crate::queries::selection::{select_points_in_polygon, PointSelection};
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;
use canvas_raster::Viewport;

/// An origin–destination data set (taxi trips, migration flows, …) with
/// one record per trip.
#[derive(Clone, Debug, Default)]
pub struct TripBatch {
    pub origins: Vec<Point>,
    pub destinations: Vec<Point>,
    pub weights: Vec<f32>,
}

impl TripBatch {
    pub fn new(origins: Vec<Point>, destinations: Vec<Point>) -> Self {
        assert_eq!(origins.len(), destinations.len());
        let n = origins.len();
        TripBatch {
            origins,
            destinations,
            weights: vec![1.0; n],
        }
    }

    pub fn len(&self) -> usize {
        self.origins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    fn origin_batch(&self) -> PointBatch {
        PointBatch {
            points: self.origins.clone(),
            ids: (0..self.len() as u32).collect(),
            weights: self.weights.clone(),
        }
    }
}

/// Selects trip records whose origin lies in `q1` *and* destination lies
/// in `q2` (Section 4.6). Returns matching record ids sorted.
pub fn select_od(
    dev: &mut Device,
    vp: Viewport,
    trips: &TripBatch,
    q1: &Polygon,
    q2: &Polygon,
) -> Vec<u32> {
    if trips.is_empty() {
        return Vec::new();
    }
    // Stage 1: C_origin ← M[Mp](B[⊙](C_P, C_Q1)).
    let origin_sel: PointSelection = select_points_in_polygon(dev, vp, &trips.origin_batch(), q1);
    if origin_sel.records.is_empty() {
        return Vec::new();
    }

    // Stage 2: G[γd] — move each surviving record to its destination.
    // The exact point entries give the id → destination lookup; the
    // moved set re-renders as a point canvas (still closed: the output
    // is a canvas).
    let survivors = &origin_sel.canvas;
    let moved = PointBatch {
        points: survivors
            .boundary()
            .points()
            .iter()
            .map(|e| trips.destinations[e.record as usize])
            .collect(),
        ids: survivors
            .boundary()
            .points()
            .iter()
            .map(|e| e.record)
            .collect(),
        weights: survivors
            .boundary()
            .points()
            .iter()
            .map(|e| e.weight)
            .collect(),
    };

    // Stage 3: blend with C_Q2 and mask again — same operators, reused.
    let dest_sel = select_points_in_polygon(dev, vp, &moved, q2);
    dest_sel.records
}

/// Group-by variant: counts trips between every (origin-zone,
/// destination-zone) pair — the flow matrix used by the OD example
/// application. Zones are given as polygon tables.
pub fn od_flow_matrix(
    dev: &mut Device,
    vp: Viewport,
    trips: &TripBatch,
    origin_zones: &crate::canvas::AreaSource,
    dest_zones: &crate::canvas::AreaSource,
) -> Vec<Vec<u64>> {
    let no = origin_zones.len();
    let nd = dest_zones.len();
    let mut matrix = vec![vec![0u64; nd]; no];
    if trips.is_empty() || no == 0 || nd == 0 {
        return matrix;
    }
    for (i, oz) in origin_zones.iter().enumerate() {
        for (j, dz) in dest_zones.iter().enumerate() {
            matrix[i][j] = select_od(dev, vp, trips, oz, dz).len() as u64;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;
    use std::sync::Arc;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            64,
            64,
        )
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    fn random_trips(n: usize, seed: u64) -> TripBatch {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let origins = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let destinations = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        TripBatch::new(origins, destinations)
    }

    #[test]
    fn od_selection_matches_brute_force() {
        let mut dev = Device::nvidia();
        let trips = random_trips(400, 19);
        let q1 = square(10.0, 10.0, 45.0);
        let q2 = square(50.0, 50.0, 45.0);
        let got = select_od(&mut dev, vp(), &trips, &q1, &q2);
        let want: Vec<u32> = (0..trips.len())
            .filter(|&i| {
                q1.contains_closed(trips.origins[i]) && q2.contains_closed(trips.destinations[i])
            })
            .map(|i| i as u32)
            .collect();
        assert_eq!(got, want);
        assert!(!want.is_empty(), "test needs a non-trivial answer");
    }

    #[test]
    fn od_conjunction_is_order_insensitive() {
        // Swapping constraint roles must select the reverse trips.
        let mut dev = Device::nvidia();
        let trips = TripBatch::new(
            vec![Point::new(20.0, 20.0), Point::new(70.0, 70.0)],
            vec![Point::new(70.0, 70.0), Point::new(20.0, 20.0)],
        );
        let a = square(10.0, 10.0, 20.0); // around (20,20)
        let b = square(60.0, 60.0, 20.0); // around (70,70)
        assert_eq!(select_od(&mut dev, vp(), &trips, &a, &b), vec![0]);
        assert_eq!(select_od(&mut dev, vp(), &trips, &b, &a), vec![1]);
    }

    #[test]
    fn od_shared_pixel_origins_resolved_exactly() {
        // Two trips whose origins share a pixel but whose destinations
        // differ: texel-level id collision must not lose a record.
        let mut dev = Device::nvidia();
        let trips = TripBatch::new(
            vec![Point::new(20.0, 20.0), Point::new(20.3, 20.3)],
            vec![Point::new(80.0, 80.0), Point::new(5.0, 5.0)],
        );
        let q1 = square(15.0, 15.0, 10.0);
        let q2 = square(75.0, 75.0, 10.0);
        assert_eq!(select_od(&mut dev, vp(), &trips, &q1, &q2), vec![0]);
    }

    #[test]
    fn od_empty_inputs() {
        let mut dev = Device::nvidia();
        let empty = TripBatch::default();
        let q = square(0.0, 0.0, 50.0);
        assert!(select_od(&mut dev, vp(), &empty, &q, &q).is_empty());
    }

    #[test]
    fn flow_matrix_counts() {
        let mut dev = Device::nvidia();
        let trips = TripBatch::new(
            vec![
                Point::new(20.0, 20.0),
                Point::new(25.0, 25.0),
                Point::new(70.0, 70.0),
            ],
            vec![
                Point::new(75.0, 75.0),
                Point::new(22.0, 22.0),
                Point::new(20.0, 25.0),
            ],
        );
        let zones: crate::canvas::AreaSource = Arc::new(vec![
            square(10.0, 10.0, 25.0), // zone 0: around (20,20)
            square(60.0, 60.0, 25.0), // zone 1: around (70,70)
        ]);
        let m = od_flow_matrix(&mut dev, vp(), &trips, &zones, &zones);
        assert_eq!(m[0][1], 1); // trip 0: zone0 → zone1
        assert_eq!(m[0][0], 1); // trip 1: zone0 → zone0
        assert_eq!(m[1][0], 1); // trip 2: zone1 → zone0
        assert_eq!(m[1][1], 0);
    }
}
