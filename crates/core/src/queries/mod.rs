//! The paper's query classes as canvas-algebra expressions (Sections
//! 4–5): every query here bottoms out in the same five fundamental
//! operators, which is the expressiveness claim the reproduction must
//! demonstrate.
//!
//! | class (paper §) | module |
//! |---|---|
//! | selection (4.1, 5.1) | [`selection`] |
//! | selection heatmap (4.1, fused chain) | [`heatmap`] |
//! | join — Types I/II/III (4.2) | [`join`] |
//! | aggregation & RasterJoin (4.3, 5.2) | [`aggregate`] |
//! | k-nearest neighbors (4.4) | [`knn`] |
//! | Voronoi stored procedure (4.5) | [`voronoi`] |
//! | convex hull (4.5) | [`hull`] |
//! | spatial skyline (4.5) | [`skyline`] |
//! | origin–destination (4.6) | [`od`] |
//! | spatio-temporal (Sec 6 setup, ref. \[11\]) | [`spatiotemporal`] |

pub mod aggregate;
pub mod heatmap;
pub mod hull;
pub mod join;
pub mod knn;
pub mod od;
pub mod selection;
pub mod skyline;
pub mod spatiotemporal;
pub mod voronoi;
