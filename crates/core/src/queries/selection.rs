//! Selection queries (paper Sections 4.1 and 5.1).
//!
//! All variants share the same two operators — Blend then Mask — which is
//! the paper's headline reuse argument: the *same* implementation handles
//! points or polygons as data, single or multiple constraint polygons,
//! and rectangle / half-space / distance constraints (which reduce to
//! polygonal constraints through the utility operators).

use std::sync::Arc;

use crate::algebra::Expr;
use crate::canvas::{AreaSource, Canvas, PointBatch};
use crate::device::Device;
use crate::info::BlendFn;
use crate::ops::{CountCond, MaskSpec};
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;
use canvas_raster::Viewport;

/// Result of a point-selection query: matching record ids plus the
/// result canvas (`C_result` — still a first-class algebra value).
#[derive(Debug)]
pub struct PointSelection {
    pub records: Vec<u32>,
    pub canvas: Canvas,
}

/// How multiple polygonal constraints combine (Section 5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiPolygon {
    /// Inside at least one constraint polygon (`Mp'`: count ≥ 1).
    Disjunction,
    /// Inside every constraint polygon (count = n).
    Conjunction,
}

/// Builds the Figure 5 plan:
/// `C_result ← M[Mp'](B[⊙](C_P, C_Q))`.
pub fn points_in_polygon_plan(data: Arc<PointBatch>, q: Polygon) -> Expr {
    Expr::mask(
        MaskSpec::PointInAreas(CountCond::Ge(1)),
        Expr::blend(
            BlendFn::PointOverArea,
            Expr::points(data),
            Expr::query_polygon(q, 1),
        ),
    )
}

/// Builds the Figure 8(b) multi-constraint plan:
/// `C_result ← M[Mp'](B[⊙](C_P, B*[⊕](C_Q…)))`.
pub fn points_in_polygons_plan(data: Arc<PointBatch>, qs: &[Polygon], mode: MultiPolygon) -> Expr {
    let cond = match mode {
        MultiPolygon::Disjunction => CountCond::Ge(1),
        MultiPolygon::Conjunction => CountCond::Eq(qs.len() as u32),
    };
    let table: AreaSource = Arc::new(qs.to_vec());
    let constraint = Expr::multi_blend(
        BlendFn::AreaCount,
        (0..qs.len())
            .map(|i| Expr::polygon_record(table.clone(), i, i as u32))
            .collect(),
    );
    Expr::mask(
        cond_to_mask(cond),
        Expr::blend(BlendFn::PointOverArea, Expr::points(data), constraint),
    )
}

fn cond_to_mask(cond: CountCond) -> MaskSpec {
    MaskSpec::PointInAreas(cond)
}

/// `SELECT * FROM D_P WHERE Location INSIDE Q` (polygonal selection of
/// points, Section 4.1; exact via boundary refinement).
pub fn select_points_in_polygon(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    q: &Polygon,
) -> PointSelection {
    let plan = points_in_polygon_plan(Arc::new(data.clone()), q.clone());
    let plan = crate::algebra::optimize(plan);
    let canvas = plan.eval(dev, vp);
    PointSelection {
        records: canvas.point_records(),
        canvas,
    }
}

/// [`select_points_in_polygon`] with a shared dataset handle and a
/// [`SubplanExchange`](crate::algebra::SubplanExchange): the selection
/// plan's interior renders become shareable across concurrent queries.
/// Subplan fingerprints identify datasets by `Arc` address, so this only
/// pays off when callers pass the *same* handle — cloning into a fresh
/// `Arc` per call (as the borrowing variant does) would publish entries
/// under never-repeating keys.
pub fn select_points_in_polygon_via(
    dev: &mut Device,
    vp: Viewport,
    data: &Arc<PointBatch>,
    q: &Polygon,
    ex: &dyn crate::algebra::SubplanExchange,
) -> PointSelection {
    let plan = points_in_polygon_plan(data.clone(), q.clone());
    let plan = crate::algebra::optimize(plan);
    let canvas = plan.eval_via(dev, vp, ex);
    PointSelection {
        records: canvas.point_records(),
        canvas,
    }
}

/// Selection with multiple polygonal constraints (Section 5.1): the only
/// extra work over the single-polygon case is blending the constraint
/// polygons — the paper's key performance claim for Figure 9(c,d).
pub fn select_points_multi(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    qs: &[Polygon],
    mode: MultiPolygon,
) -> PointSelection {
    let plan = points_in_polygons_plan(Arc::new(data.clone()), qs, mode);
    let plan = crate::algebra::optimize(plan);
    let canvas = plan.eval(dev, vp);
    PointSelection {
        records: canvas.point_records(),
        canvas,
    }
}

/// Rectangular range selection (Section 4.1, case 1): the constraint is
/// the `Rect` utility canvas.
pub fn select_points_in_rect(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    l1: Point,
    l2: Point,
) -> PointSelection {
    let b = canvas_geom::BBox::from_corners(l1, l2);
    select_points_in_polygon(dev, vp, data, &Polygon::rect(&b))
}

/// One-sided range selection `ax + by + c < 0` (Section 4.1, case 2):
/// the constraint is the `HS` utility canvas (viewport-clipped).
pub fn select_points_in_halfspace(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    a: f64,
    b: f64,
    c: f64,
) -> PointSelection {
    let extent_ring = vp.world().corners().to_vec();
    let clipped = canvas_geom::clip::clip_ring_halfplane(&extent_ring, a, b, c);
    match Polygon::simple(clipped) {
        Ok(poly) => select_points_in_polygon(dev, vp, data, &poly),
        Err(_) => PointSelection {
            records: Vec::new(),
            canvas: Canvas::empty(vp),
        },
    }
}

/// Distance-based selection (Section 4.1, case 3): the constraint is the
/// `Circ` utility canvas. Boundary refinement tests the tessellated
/// circle polygon; [`select_points_within_distance_exact`] additionally
/// re-checks the true metric ball so tessellation never leaks error.
pub fn select_points_within_distance(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    center: Point,
    d: f64,
) -> PointSelection {
    let circle = Polygon::circle(center, d, crate::ops::utility::CIRCLE_SEGMENTS);
    select_points_in_polygon(dev, vp, data, &circle)
}

/// Distance selection with a final exact metric filter (cheap: only the
/// already-selected candidates plus near-boundary points are checked).
pub fn select_points_within_distance_exact(
    dev: &mut Device,
    vp: Viewport,
    data: &PointBatch,
    center: Point,
    d: f64,
) -> PointSelection {
    // Slightly inflated tessellated circle so the polygon is a superset
    // of the metric ball; then exact distance test on candidates.
    let inflate = d * 1.01;
    let circle = Polygon::circle(center, inflate, crate::ops::utility::CIRCLE_SEGMENTS);
    let mut sel = select_points_in_polygon(dev, vp, data, &circle);
    let d2 = d * d;
    sel.canvas
        .boundary_mut()
        .retain_points(|e| e.loc.dist_sq(center) <= d2);
    sel.records = sel.canvas.point_records();
    sel
}

/// Result of a polygon-selection query.
#[derive(Debug)]
pub struct PolygonSelection {
    pub records: Vec<u32>,
}

/// `SELECT * FROM D_L WHERE Geometry INTERSECTS Q` — polygonal selection
/// of **line data** (1-primitives), e.g. road segments crossing a
/// district. Same Blend+Mask shape: line canvases blend with the query
/// polygon; a pixel with both a 1-row and a 2-row is evidence; since
/// line coverage is all-boundary, candidate records whose evidence could
/// be conservative-only are refined with the exact vector test.
pub fn select_lines_intersecting(
    dev: &mut Device,
    vp: Viewport,
    data: &crate::canvas::LineSource,
    q: &Polygon,
) -> PolygonSelection {
    let cl = crate::source::render_polylines(dev, vp, data);
    let cq = crate::source::render_query_polygon(dev, vp, q.clone(), u32::MAX);
    let merged = crate::ops::blend(dev, &cl, &cq, BlendFn::Over);
    let spec = MaskSpec::Texel(
        "line ∧ area",
        std::sync::Arc::new(|t: &crate::info::Texel| t.has(1) && t.has(2)),
    );
    let sel = crate::ops::mask(dev, &merged, &spec);
    // Candidate records from the surviving line entries; exact-refine
    // each (conservative coverage of both line and polygon can overlap
    // without true intersection).
    let mut candidates: Vec<u32> = sel.boundary().lines().iter().map(|e| e.record).collect();
    candidates.sort_unstable();
    candidates.dedup();
    let records: Vec<u32> = candidates
        .into_iter()
        .filter(|&r| canvas_geom::distance::polyline_intersects_polygon(&data[r as usize], q))
        .collect();
    PolygonSelection { records }
}

/// `SELECT * FROM D_Y WHERE Geometry INTERSECTS Q` (polygonal selection
/// of polygons, Section 4.1 / Figure 6).
///
/// Per record (canvas): `M[My](B[⊕](C_Yi, C_Q))` — non-empty output means
/// the record qualifies. Conservative rasterization can only create
/// false *positives* at boundary pixels, so records whose surviving
/// pixels all involve boundary coverage are re-checked against vector
/// geometry (the canvas's exactness contract, Section 5).
pub fn select_polygons_intersecting(
    dev: &mut Device,
    vp: Viewport,
    data: &AreaSource,
    q: &Polygon,
) -> PolygonSelection {
    let cq = crate::source::render_query_polygon(dev, vp, q.clone(), u32::MAX);
    let qb = q.bbox();
    let mut records = Vec::new();
    for (i, poly) in data.iter().enumerate() {
        // Filter step (the paper's evaluation assumes an MBR pre-filter).
        if !poly.bbox().intersects(&qb) {
            continue;
        }
        let cy = crate::source::render_polygon(dev, vp, data, i, i as u32);
        let merged = crate::ops::blend(dev, &cy, &cq, BlendFn::AreaCount);
        let sel = crate::ops::mask(dev, &merged, &MaskSpec::AreaCount(CountCond::Eq(2)));
        if sel.is_empty() {
            continue;
        }
        // Certain if any surviving pixel is fully covered by both.
        let certain = sel.non_null().any(|(x, y, _)| sel.cover().get(x, y) >= 2);
        if certain || poly.intersects(q) {
            records.push(i as u32);
        }
    }
    PolygonSelection { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            n,
            n,
        )
    }

    /// Deterministic pseudo-random points in the extent.
    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn blob_polygon() -> Polygon {
        Polygon::simple(vec![
            Point::new(20.0, 15.0),
            Point::new(70.0, 10.0),
            Point::new(85.0, 45.0),
            Point::new(60.0, 80.0),
            Point::new(45.0, 60.0),
            Point::new(15.0, 70.0),
            Point::new(10.0, 35.0),
        ])
        .unwrap()
    }

    #[test]
    fn selection_matches_exact_pip_on_random_data() {
        let mut dev = Device::nvidia();
        let pts = random_points(500, 42);
        let q = blob_polygon();
        let expected: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_closed(**p))
            .map(|(i, _)| i as u32)
            .collect();
        let data = PointBatch::from_points(pts);
        // Coarse canvas on purpose: exactness must come from refinement.
        let sel = select_points_in_polygon(&mut dev, vp(64), &data, &q);
        assert_eq!(sel.records, expected);
        assert!(!expected.is_empty());
        assert!(expected.len() < 500);
    }

    #[test]
    fn selection_resolution_independent() {
        // Exactness means the answer cannot depend on canvas resolution.
        let pts = random_points(300, 7);
        let q = blob_polygon();
        let data = PointBatch::from_points(pts);
        let mut results = Vec::new();
        for res in [32, 64, 256] {
            let mut dev = Device::nvidia();
            results.push(select_points_in_polygon(&mut dev, vp(res), &data, &q).records);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn disjunction_and_conjunction() {
        let mut dev = Device::nvidia();
        let pts = vec![
            Point::new(25.0, 25.0), // in A only
            Point::new(55.0, 55.0), // in B only
            Point::new(45.0, 45.0), // in both
            Point::new(90.0, 90.0), // in neither
        ];
        let a = Polygon::simple(vec![
            Point::new(10.0, 10.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 50.0),
            Point::new(10.0, 50.0),
        ])
        .unwrap();
        let b = Polygon::simple(vec![
            Point::new(40.0, 40.0),
            Point::new(80.0, 40.0),
            Point::new(80.0, 80.0),
            Point::new(40.0, 80.0),
        ])
        .unwrap();
        let data = PointBatch::from_points(pts);
        let dis = select_points_multi(
            &mut dev,
            vp(64),
            &data,
            &[a.clone(), b.clone()],
            MultiPolygon::Disjunction,
        );
        assert_eq!(dis.records, vec![0, 1, 2]);
        let con = select_points_multi(&mut dev, vp(64), &data, &[a, b], MultiPolygon::Conjunction);
        assert_eq!(con.records, vec![2]);
    }

    #[test]
    fn rect_and_halfspace_selections() {
        let mut dev = Device::nvidia();
        let pts = random_points(200, 99);
        let data = PointBatch::from_points(pts.clone());
        let sel = select_points_in_rect(
            &mut dev,
            vp(64),
            &data,
            Point::new(20.0, 30.0),
            Point::new(60.0, 70.0),
        );
        let expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.x >= 20.0 && p.x <= 60.0 && p.y >= 30.0 && p.y <= 70.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.records, expect);

        // x < 50  <=>  x - 50 < 0.
        let hs = select_points_in_halfspace(&mut dev, vp(64), &data, 1.0, 0.0, -50.0);
        let expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.x <= 50.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(hs.records, expect);
    }

    #[test]
    fn empty_halfspace_selection() {
        let mut dev = Device::nvidia();
        let data = PointBatch::from_points(random_points(10, 3));
        // x + 1000 < 0 is empty over the extent.
        let sel = select_points_in_halfspace(&mut dev, vp(32), &data, 1.0, 0.0, 1000.0);
        assert!(sel.records.is_empty());
    }

    #[test]
    fn distance_selection_exact() {
        let mut dev = Device::nvidia();
        let pts = random_points(400, 1234);
        let data = PointBatch::from_points(pts.clone());
        let center = Point::new(50.0, 50.0);
        let d = 23.0;
        let sel = select_points_within_distance_exact(&mut dev, vp(64), &data, center, d);
        let expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(center) <= d)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.records, expect);
    }

    #[test]
    fn polygon_selection_same_operators() {
        // The paper's reuse claim: the same blend+mask pipeline selects
        // polygons instead of points.
        let mut dev = Device::nvidia();
        let data: AreaSource = Arc::new(vec![
            // 0: clearly overlaps the query.
            Polygon::simple(vec![
                Point::new(30.0, 30.0),
                Point::new(55.0, 30.0),
                Point::new(55.0, 55.0),
                Point::new(30.0, 55.0),
            ])
            .unwrap(),
            // 1: disjoint.
            Polygon::simple(vec![
                Point::new(80.0, 80.0),
                Point::new(95.0, 80.0),
                Point::new(95.0, 95.0),
                Point::new(80.0, 95.0),
            ])
            .unwrap(),
            // 2: fully inside the query.
            Polygon::simple(vec![
                Point::new(40.0, 40.0),
                Point::new(45.0, 40.0),
                Point::new(45.0, 45.0),
                Point::new(40.0, 45.0),
            ])
            .unwrap(),
        ]);
        let q = Polygon::simple(vec![
            Point::new(25.0, 25.0),
            Point::new(60.0, 25.0),
            Point::new(60.0, 60.0),
            Point::new(25.0, 60.0),
        ])
        .unwrap();
        let sel = select_polygons_intersecting(&mut dev, vp(64), &data, &q);
        assert_eq!(sel.records, vec![0, 2]);
    }

    #[test]
    fn polygon_selection_near_miss_is_exact() {
        // Two polygons separated by less than a pixel: conservative
        // rasterization overlaps their coverage, but the record-level
        // refinement must reject the pair.
        let mut dev = Device::nvidia();
        // Pixel width at 64x64 over 100x100 world is ~1.56 units; keep a
        // gap of 0.5 units.
        let data: AreaSource = Arc::new(vec![Polygon::simple(vec![
            Point::new(10.0, 10.0),
            Point::new(49.7, 10.0),
            Point::new(49.7, 40.0),
            Point::new(10.0, 40.0),
        ])
        .unwrap()]);
        let q = Polygon::simple(vec![
            Point::new(50.2, 10.0),
            Point::new(90.0, 10.0),
            Point::new(90.0, 40.0),
            Point::new(50.2, 40.0),
        ])
        .unwrap();
        let sel = select_polygons_intersecting(&mut dev, vp(64), &data, &q);
        assert!(sel.records.is_empty(), "near-miss must not select");
    }

    #[test]
    fn line_data_selection_exact() {
        // Roads crossing a district: same operators, 1-primitive data.
        let mut dev = Device::nvidia();
        let roads: crate::canvas::LineSource = Arc::new(vec![
            // 0: crosses the query region.
            canvas_geom::Polyline::new(vec![Point::new(0.0, 50.0), Point::new(100.0, 50.0)])
                .unwrap(),
            // 1: far away.
            canvas_geom::Polyline::new(vec![Point::new(0.0, 95.0), Point::new(100.0, 95.0)])
                .unwrap(),
            // 2: fully inside.
            canvas_geom::Polyline::new(vec![
                Point::new(40.0, 40.0),
                Point::new(55.0, 45.0),
                Point::new(60.0, 60.0),
            ])
            .unwrap(),
            // 3: near miss below the region (within a coarse pixel).
            canvas_geom::Polyline::new(vec![Point::new(20.0, 24.2), Point::new(80.0, 24.2)])
                .unwrap(),
        ]);
        let q = Polygon::simple(vec![
            Point::new(25.0, 25.0),
            Point::new(75.0, 25.0),
            Point::new(75.0, 75.0),
            Point::new(25.0, 75.0),
        ])
        .unwrap();
        let sel = select_lines_intersecting(&mut dev, vp(64), &roads, &q);
        assert_eq!(sel.records, vec![0, 2]);
    }

    #[test]
    fn plan_diagram_matches_figure_8b() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let qs = vec![blob_polygon(), blob_polygon()];
        let plan = points_in_polygons_plan(data, &qs, MultiPolygon::Disjunction);
        let s = plan.plan();
        assert!(s.contains("Mp'"));
        assert!(s.contains("B[⊙]"));
        assert!(s.contains("B*[⊕]"));
    }
}
