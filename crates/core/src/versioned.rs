//! Versioned point tables and incremental canvas maintenance.
//!
//! The paper motivates the model with a continuously arriving taxi
//! feed, but the algebra's tables are immutable and the engine's cache
//! keys identify datasets by `Arc` handle — a live deployment would
//! have to drop every cached canvas and re-render O(dataset) on each
//! append. This module adds the streaming-ingest story:
//!
//! * [`VersionedTable`] — an append-only point table with a **stable
//!   identity handle** and a **monotone generation stamp**. Both fold
//!   into [`FingerprintBuilder`] identities
//!   ([`TableSnapshot::fold_identity`]), so a cached canvas keyed at
//!   generation `g` can never satisfy a probe at generation `g+1`
//!   (stale results are unreachable by construction), while repeated
//!   probes at the *same* generation still hit.
//! * [`render_live_heatmap`] — the maintained view: a full tiled
//!   point-density render finished by the `HeatLog` value pass
//!   (`v2 := ln(1 + count)` per occupied pixel).
//! * [`patch_live_heatmap`] — O(delta) maintenance: clone the cached
//!   canvas of a previous generation, bin only the appended points to
//!   tiles, replay the blend on the dirty tiles, re-apply the value
//!   pass over those tiles, and append the delta's boundary entries.
//!
//! ## Why the patch is bit-identical to a full re-render
//!
//! The equivalence is by construction, not approximation (and fuzzed
//! in `tests/incremental_equivalence.rs`):
//!
//! * Per-pixel blending is a sequential left fold over points in input
//!   order ([`BlendFn::PointAccumulate`]); folding the appended suffix
//!   onto the prefix's result equals folding the whole sequence. The
//!   blend reads and writes only the 0-row's `(id, v1, v2)`.
//! * The `HeatLog` value kernel writes `v2` purely from `v1` and
//!   touches nothing else. Re-applying it over a dirty tile therefore
//!   overwrites the only word the cached (post-value-pass) texels
//!   disagree on with the pre-value-pass fold state — and tiles with
//!   no delta points already hold the exact full-render texels.
//! * Boundary point entries are stably sorted by pixel; pushing the
//!   delta's entries in input order and re-sorting reproduces the
//!   push-all-then-sort index exactly. The cover plane is never
//!   touched by point draws.
//!
//! The grid index rides along incrementally: the table retains its CSR
//! [`GridIndexBuilder`] and inserts only the delta points on append —
//! [`VersionedTable::grid_index`] packs the accumulated items without
//! re-binning the history.

use std::sync::{Arc, Mutex};

use crate::algebra::FingerprintBuilder;
use crate::boundary::PointEntry;
use crate::canvas::{Canvas, PointBatch};
use crate::device::Device;
use crate::info::{BlendFn, Texel};
use canvas_geom::grid::{GridIndex, GridIndexBuilder};
use canvas_geom::{BBox, Point};
use canvas_raster::{Backend, OpChain, ValueTag, Viewport};

/// Result of one [`VersionedTable::append`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The new (post-append) generation.
    pub generation: u64,
    /// Points accepted by this append (may be 0 — an empty append is a
    /// no-op generation bump).
    pub appended: usize,
    /// Total points at the new generation.
    pub total: usize,
}

/// Outcome of one [`patch_live_heatmap`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PatchOutcome {
    /// Tiles that received at least one delta point and were redrawn.
    pub dirty_tiles: usize,
    /// Total tiles of the viewport's grid.
    pub total_tiles: usize,
    /// Points in the applied delta (including out-of-viewport ones).
    pub delta_points: usize,
}

struct State {
    points: Vec<Point>,
    weights: Vec<f32>,
    /// Monotone version stamp; bumped by every append, empty or not.
    generation: u64,
    /// `gen_lens[g]` = point count at generation `g` (append-only, so a
    /// generation's prefix length identifies its contents exactly).
    gen_lens: Vec<usize>,
    appends: u64,
    /// Retained CSR builder: appends insert only the delta points.
    grid: GridIndexBuilder,
    /// Cached immutable snapshot of the current generation.
    snapshot: Option<TableSnapshot>,
}

/// An append-only versioned point table (see module docs).
///
/// Appends and snapshots are thread-safe; concurrent appenders
/// serialize on an internal lock and readers always observe a complete
/// generation. Record ids are assigned globally (`0..len` in arrival
/// order) so ids stay unique across appended batches.
pub struct VersionedTable {
    /// Stable identity: fingerprints hash this `Arc`'s address, so the
    /// table keeps one dataset identity across all generations (and
    /// cache entries pin it to keep the address alive).
    ident: Arc<String>,
    state: Mutex<State>,
}

impl VersionedTable {
    /// A table over the feed's declared world `extent` (sizes the
    /// retained grid index; appended points outside it are clamped to
    /// edge cells) seeded with `base` as generation 0.
    pub fn new(name: &str, extent: BBox, base: PointBatch) -> Self {
        let extent = extent.inflated(1e-9);
        let extent = if extent.is_empty() {
            BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
        } else {
            extent
        };
        let mut grid = GridIndexBuilder::with_target_occupancy(extent, base.len().max(1024), 8);
        for (i, &p) in base.points.iter().enumerate() {
            grid.insert(i as u32, &BBox::new(p, p));
        }
        VersionedTable {
            ident: Arc::new(name.to_string()),
            state: Mutex::new(State {
                gen_lens: vec![base.points.len()],
                points: base.points,
                weights: base.weights,
                generation: 0,
                appends: 0,
                grid,
                snapshot: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Table name (diagnostics only; identity is the `Arc` address).
    pub fn name(&self) -> &str {
        &self.ident
    }

    /// Appends a batch and bumps the generation. Incoming ids are
    /// ignored — records get global sequential ids; weights are kept.
    /// An empty batch is a no-op generation bump (same points, new
    /// stamp), which deliberately invalidates cached fingerprints.
    pub fn append(&self, batch: &PointBatch) -> AppendOutcome {
        let mut st = self.lock();
        let base = st.points.len();
        for (k, &p) in batch.points.iter().enumerate() {
            st.grid.insert((base + k) as u32, &BBox::new(p, p));
        }
        st.points.extend_from_slice(&batch.points);
        st.weights.extend_from_slice(&batch.weights);
        st.generation += 1;
        st.appends += 1;
        let total = st.points.len();
        st.gen_lens.push(total);
        st.snapshot = None;
        AppendOutcome {
            generation: st.generation,
            appended: batch.len(),
            total,
        }
    }

    /// Current generation stamp (0 for the freshly constructed table).
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Total appends accepted so far.
    pub fn appends(&self) -> u64 {
        self.lock().appends
    }

    pub fn len(&self) -> usize {
        self.lock().points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An immutable snapshot of the current generation (cached until
    /// the next append, so repeated snapshots of one generation share
    /// the same batch `Arc` — and therefore the same fingerprint).
    pub fn snapshot(&self) -> TableSnapshot {
        let mut st = self.lock();
        if st.snapshot.is_none() {
            let n = st.points.len();
            st.snapshot = Some(TableSnapshot {
                ident: Arc::clone(&self.ident),
                batch: Arc::new(PointBatch {
                    points: st.points.clone(),
                    ids: (0..n as u32).collect(),
                    weights: st.weights.clone(),
                }),
                generation: st.generation,
                gen_lens: Arc::new(st.gen_lens.clone()),
            });
        }
        st.snapshot.clone().expect("populated above")
    }

    /// Packs the retained (incrementally grown) CSR builder into a
    /// queryable grid index. Equivalent to rebuilding from scratch over
    /// the current points — asserted in tests — but appends never
    /// re-bin the history.
    pub fn grid_index(&self) -> GridIndex {
        self.lock().grid.clone().build()
    }
}

/// An immutable view of one generation of a [`VersionedTable`]:
/// the full point batch, the generation stamp, and the prefix lengths
/// of every earlier generation (what an incremental refresh needs to
/// locate a delta against *any* cached predecessor).
#[derive(Clone)]
pub struct TableSnapshot {
    ident: Arc<String>,
    batch: Arc<PointBatch>,
    generation: u64,
    gen_lens: Arc<Vec<usize>>,
}

impl TableSnapshot {
    /// The snapshot's full point batch (shared; append-only prefix of
    /// every later generation).
    pub fn batch(&self) -> &Arc<PointBatch> {
        &self.batch
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn len(&self) -> usize {
        self.batch.len()
    }

    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Point count at `generation` (≤ this snapshot's), or `None` for
    /// unknown generations.
    pub fn len_at(&self, generation: u64) -> Option<usize> {
        if generation > self.generation {
            return None;
        }
        self.gen_lens.get(generation as usize).copied()
    }

    /// Prior generations of this table, newest first — the probe order
    /// for an incremental refresh (patching the freshest cached canvas
    /// redraws the fewest points).
    pub fn predecessors(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.generation).rev()
    }

    /// Folds this snapshot's dataset identity — stable table handle +
    /// generation stamp + length — into a fingerprint under the
    /// standard identity contract (datasets by handle). Two snapshots
    /// of one table at different generations can never collide, and
    /// re-snapshotting an unchanged table reproduces the identity.
    pub fn fold_identity(&self, fb: &mut FingerprintBuilder) {
        fb.handle(&self.ident, self.len()).word(self.generation);
    }

    /// Identity of the same table at an older `generation` (for
    /// probing a predecessor's cache entries). Panics on generations
    /// this snapshot does not know.
    pub fn fold_identity_at(&self, fb: &mut FingerprintBuilder, generation: u64) {
        let len = self
            .len_at(generation)
            .expect("generation beyond this snapshot");
        fb.handle(&self.ident, len).word(generation);
    }

    /// The table's stable identity handle — cache entries must pin
    /// this (the fingerprint hashed its address) alongside the batch.
    pub fn ident_handle(&self) -> Arc<String> {
        Arc::clone(&self.ident)
    }
}

/// Builds the live-heatmap operator chain: the tiled point-density
/// draw finished by the `HeatLog` value pass, optionally pinned to an
/// explicit SIMD backend (tests pin both the full and the incremental
/// path to the same backend to exercise the dispatch axis without
/// process-global state).
fn heatmap_chain<'a>(backend: Option<Backend>) -> OpChain<'a, Texel> {
    let chain: OpChain<'_, Texel> = OpChain::new()
        .with_null_test(|t: &Texel| t.is_null())
        .map_tagged(ValueTag::HeatLog);
    match backend {
        Some(be) => chain.with_backend(be),
        None => chain,
    }
}

/// Full render of the live density heatmap: every point accumulates
/// `(count, weight)` into its pixel's 0-row, then the `HeatLog` pass
/// writes `v2 := ln(1 + count)`. This is the from-scratch path an
/// incremental refresh falls back to (and the oracle the patch path is
/// compared against, bit for bit).
pub fn render_live_heatmap(
    dev: &mut Device,
    vp: Viewport,
    batch: &PointBatch,
    backend: Option<Backend>,
) -> Canvas {
    let mut canvas = Canvas::empty(vp);
    dev.pipeline().note_upload(batch.upload_bytes());
    let chain = heatmap_chain(backend);
    let ids = &batch.ids;
    let weights = &batch.weights;
    {
        let (texels, cover, _) = canvas.planes_mut();
        dev.pipeline().run_chain_points(
            &vp,
            texels,
            Some(cover),
            &batch.points,
            |i, _| Texel::point(ids[i as usize], 1.0, weights[i as usize]),
            |d, s| BlendFn::PointAccumulate.apply(d, s),
            &chain,
        );
    }
    crate::source::push_point_entries(&mut canvas, &vp, batch);
    canvas
}

/// Incremental maintenance of a live heatmap: clones `base` — the
/// canvas rendered from the first `from_len` points of `batch` — and
/// patches in the appended suffix `batch[from_len..]`, redrawing only
/// the tiles the delta touches. Bit-identical to
/// [`render_live_heatmap`] over the full batch (module docs explain
/// why; the proptest oracle asserts it).
pub fn patch_live_heatmap(
    dev: &mut Device,
    vp: Viewport,
    base: &Canvas,
    batch: &PointBatch,
    from_len: usize,
    backend: Option<Backend>,
) -> (Canvas, PatchOutcome) {
    assert_eq!(
        base.viewport(),
        &vp,
        "patch requires the cached canvas's viewport"
    );
    assert!(
        from_len <= batch.len(),
        "previous generation longer than the batch (tables are append-only)"
    );
    let mut canvas = base.clone();
    let delta_points = &batch.points[from_len..];
    let delta_ids = &batch.ids[from_len..];
    let delta_weights = &batch.weights[from_len..];
    // Only the delta is uploaded — the cached canvas is already device
    // resident in the modeled deployment.
    dev.pipeline()
        .note_upload((delta_points.len() * (8 + 4 + 4)) as u64);
    let be = backend.unwrap_or_else(canvas_raster::simd::active_backend);
    let report = {
        let (texels, _, _) = canvas.planes_mut();
        dev.pipeline().patch_points_tiled(
            &vp,
            texels,
            delta_points,
            |i, _| Texel::point(delta_ids[i as usize], 1.0, delta_weights[i as usize]),
            |d, s| BlendFn::PointAccumulate.apply(d, s),
            Some((be, ValueTag::HeatLog)),
        )
    };
    // Delta boundary entries in input order onto the (sorted) cloned
    // index; the stable re-sort reproduces push-all-then-sort exactly.
    for (i, &p) in delta_points.iter().enumerate() {
        if let Some((x, y)) = vp.world_to_pixel(p) {
            let pixel = canvas.pixel_index(x, y);
            canvas.boundary_mut().push_point(PointEntry {
                pixel,
                record: delta_ids[i],
                loc: p,
                weight: delta_weights[i],
            });
        }
    }
    canvas.boundary_mut().sort();
    (
        canvas,
        PatchOutcome {
            dirty_tiles: report.dirty_tiles,
            total_tiles: report.total_tiles,
            delta_points: delta_points.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            n,
            n,
        )
    }

    fn batch(pts: &[(f64, f64)]) -> PointBatch {
        PointBatch::from_points(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn generations_and_snapshots() {
        let t = VersionedTable::new(
            "taxi",
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            batch(&[(1.0, 1.0), (2.0, 2.0)]),
        );
        assert_eq!(t.generation(), 0);
        assert_eq!(t.len(), 2);
        let s0 = t.snapshot();
        // Same-generation snapshots share the batch Arc (stable
        // fingerprints for cache hits).
        assert!(Arc::ptr_eq(s0.batch(), t.snapshot().batch()));

        let out = t.append(&batch(&[(3.0, 3.0)]));
        assert_eq!(
            out,
            AppendOutcome {
                generation: 1,
                appended: 1,
                total: 3
            }
        );
        let s1 = t.snapshot();
        assert_eq!(s1.generation(), 1);
        assert_eq!(s1.len_at(0), Some(2));
        assert_eq!(s1.len_at(1), Some(3));
        assert_eq!(s1.len_at(2), None);
        assert_eq!(s1.predecessors().collect::<Vec<_>>(), vec![0]);
        // Global ids stay sequential across appends.
        assert_eq!(s1.batch().ids, vec![0, 1, 2]);

        // Identity: same generation reproduces, different generations
        // (and the no-op bump) differ.
        let fp = |s: &TableSnapshot| {
            let mut fb = FingerprintBuilder::new("test/versioned");
            s.fold_identity(&mut fb);
            fb.finish()
        };
        assert_ne!(fp(&s0), fp(&s1));
        assert_eq!(fp(&s1), fp(&t.snapshot()));
        let empty = t.append(&PointBatch::default());
        assert_eq!(
            empty,
            AppendOutcome {
                generation: 2,
                appended: 0,
                total: 3
            }
        );
        assert_ne!(fp(&t.snapshot()), fp(&s1), "empty append still re-stamps");
        // The old snapshot can reconstruct its own identity from the
        // newer one's view.
        let mut fb = FingerprintBuilder::new("test/versioned");
        t.snapshot().fold_identity_at(&mut fb, 1);
        assert_eq!(fb.finish(), fp(&s1));
    }

    #[test]
    fn incremental_grid_index_matches_rebuild() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let t = VersionedTable::new("g", extent, batch(&[(1.0, 1.0), (9.0, 9.0)]));
        t.append(&batch(&[(1.2, 1.1), (5.0, 5.0)]));
        let got = t.grid_index();
        assert_eq!(got.len(), 4);
        let q = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let hits = got.query(&q);
        assert!(hits.contains(&0) && hits.contains(&2), "hits {hits:?}");
        assert!(!hits.contains(&1) && !hits.contains(&3), "hits {hits:?}");
    }

    #[test]
    fn patch_matches_full_render_simple() {
        let full = batch(&[(2.5, 2.5), (2.6, 2.4), (7.5, 7.5), (2.5, 2.5), (1.0, 8.0)]);
        for threads in [1usize, 3] {
            let mut dev_full = Device::cpu_parallel(threads);
            let mut dev_inc = Device::cpu_parallel(threads);
            let want = render_live_heatmap(&mut dev_full, vp(128), &full, None);
            let prefix = PointBatch {
                points: full.points[..3].to_vec(),
                ids: full.ids[..3].to_vec(),
                weights: full.weights[..3].to_vec(),
            };
            let base = render_live_heatmap(&mut dev_inc, vp(128), &prefix, None);
            let (got, out) = patch_live_heatmap(&mut dev_inc, vp(128), &base, &full, 3, None);
            assert_eq!(got.texels(), want.texels(), "threads={threads}");
            assert_eq!(got.cover(), want.cover(), "threads={threads}");
            assert_eq!(got.boundary(), want.boundary(), "threads={threads}");
            assert_eq!(out.delta_points, 2);
            assert!(out.dirty_tiles >= 1 && out.dirty_tiles <= 2);
            assert_eq!(out.total_tiles, 4);
        }
    }

    #[test]
    fn empty_delta_patch_is_identity() {
        let full = batch(&[(2.5, 2.5), (7.5, 7.5)]);
        let mut dev = Device::cpu();
        let base = render_live_heatmap(&mut dev, vp(64), &full, None);
        let (got, out) = patch_live_heatmap(&mut dev, vp(64), &base, &full, 2, None);
        assert_eq!(got.texels(), base.texels());
        assert_eq!(got.boundary(), base.boundary());
        assert_eq!(out.dirty_tiles, 0);
        assert_eq!(out.delta_points, 0);
    }

    #[test]
    fn out_of_viewport_delta_dirties_no_tiles() {
        let full = batch(&[(2.5, 2.5), (50.0, 50.0), (-3.0, 4.0)]);
        let mut dev = Device::cpu();
        let base = render_live_heatmap(&mut dev, vp(64), &full, None);
        let (got, out) = patch_live_heatmap(&mut dev, vp(64), &base, &full, 1, None);
        let mut dev2 = Device::cpu();
        let want = render_live_heatmap(&mut dev2, vp(64), &full, None);
        assert_eq!(got.texels(), want.texels());
        assert_eq!(got.boundary(), want.boundary());
        assert_eq!(out.dirty_tiles, 0, "out-of-viewport points dirty nothing");
        assert_eq!(out.delta_points, 2);
    }
}
