//! Execution device: a software pipeline plus the profile that models it.
//!
//! Queries execute against a [`Device`]; all pipeline work is counted and
//! can be converted to modeled GPU time (see `canvas_raster::device` for
//! the substitution rationale — this container has no physical GPU).

use canvas_raster::{DeviceProfile, Pipeline, PipelineStats, WorkerPool};
use std::sync::Arc;

/// A pipeline bound to a device profile.
///
/// A `Device` owns its pipeline and, through it, a persistent
/// [`WorkerPool`]: `cpu_parallel(n)` spawns the pool's `n - 1` workers
/// **once**, every subsequent pass re-uses them (parked on a condvar
/// between passes), and dropping the device joins them — no threads
/// outlive it (the pool-shutdown leak check asserts this).
#[derive(Debug)]
pub struct Device {
    pipeline: Pipeline,
    profile: DeviceProfile,
}

impl Device {
    pub fn new(profile: DeviceProfile) -> Self {
        Device {
            pipeline: Pipeline::new(),
            profile,
        }
    }

    /// The discrete GPU of the paper's evaluation (modeled).
    pub fn nvidia() -> Self {
        Device::new(DeviceProfile::nvidia_gtx_1070_max_q())
    }

    /// The integrated GPU of the paper's evaluation (modeled).
    pub fn intel() -> Self {
        Device::new(DeviceProfile::intel_uhd_630())
    }

    /// Single-threaded CPU execution of the tiled software pipeline —
    /// the sequential reference the parallel mode is verified against.
    pub fn cpu() -> Self {
        Device::new(DeviceProfile::cpu_parallel_n(1))
    }

    /// `n`-thread CPU execution: the same tiled pipeline with tiles and
    /// full-screen bands spread across the device's persistent worker
    /// pool (spawned here, once). Results are bit-identical to
    /// [`Device::cpu`] at any `n` (tiles merge in a fixed order;
    /// per-pixel blend order is the input order).
    pub fn cpu_parallel(threads: usize) -> Self {
        let mut dev = Device::new(DeviceProfile::cpu_parallel_n(threads));
        dev.pipeline.set_threads(threads);
        dev
    }

    /// A device whose pipeline executes on an **existing** worker pool
    /// instead of spawning its own — how a serving engine gives many
    /// concurrently-evaluating queries one set of executor threads.
    /// Construction is cheap (no thread spawn); dropping it never joins
    /// the shared workers.
    pub fn with_pool(profile: DeviceProfile, pool: Arc<WorkerPool>) -> Self {
        let mut dev = Device::new(profile);
        dev.pipeline.set_pool(pool);
        dev
    }

    /// Worker threads the pipeline fans work out to (1 = sequential).
    pub fn threads(&self) -> usize {
        self.pipeline.threads()
    }

    /// The persistent worker pool executing this device's passes
    /// (shared with every operator; sized by [`cpu_parallel`](Self::cpu_parallel)).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.pipeline.pool()
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    pub fn pipeline(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    pub fn stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    pub fn reset_stats(&mut self) {
        self.pipeline.reset_stats();
    }

    /// Modeled execution time (seconds) of all work since the last reset.
    pub fn modeled_time(&self) -> f64 {
        self.profile.estimate(&self.pipeline.stats())
    }

    /// Modeled transfer-only time (seconds).
    pub fn modeled_transfer_time(&self) -> f64 {
        self.profile.transfer_time(&self.pipeline.stats())
    }
}

impl Default for Device {
    /// Defaults to the discrete-GPU profile, the paper's primary target.
    fn default() -> Self {
        Device::nvidia()
    }
}

/// The shared-state evaluation path: one worker pool + profile + stats
/// accumulator that **many threads** can evaluate plans against through
/// `&self` — the concurrency surface `Expr::eval(&mut Device, …)`
/// cannot offer.
///
/// A [`Device`] is deliberately single-caller (`&mut` everywhere): its
/// pipeline owns scratch planes and work counters. `SharedDevice`
/// splits that state instead of wrapping it in one big lock: the
/// expensive part (the executor pool and its parked worker threads) is
/// shared by reference, while each evaluation [`lease`](Self::lease)s
/// a throwaway `Device` around the shared pool (cheap: a couple of
/// allocations, no thread spawn) and folds its work counters back into
/// the shared total on [`reclaim`](Self::reclaim). Evaluations from
/// different threads therefore run genuinely concurrently — their
/// passes interleave fairly on the pool's pass gate — and the modeled
/// cost accounting still adds up across all of them.
#[derive(Debug)]
pub struct SharedDevice {
    pool: Arc<WorkerPool>,
    profile: DeviceProfile,
    stats: std::sync::Mutex<PipelineStats>,
}

impl SharedDevice {
    /// Shares an existing pool under the given profile.
    pub fn with_pool(profile: DeviceProfile, pool: Arc<WorkerPool>) -> Self {
        SharedDevice {
            pool,
            profile,
            stats: std::sync::Mutex::new(PipelineStats::default()),
        }
    }

    /// Spawns a fresh `threads`-wide pool (the shared sibling of
    /// [`Device::cpu_parallel`], with the matching modeled profile).
    pub fn cpu_parallel(threads: usize) -> Self {
        let threads = threads.max(1);
        Self::with_pool(
            DeviceProfile::cpu_parallel_n(threads),
            Arc::new(WorkerPool::new(threads)),
        )
    }

    /// The shared executor pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Concurrent executors of the shared pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Checks out a private `Device` over the shared pool. Pair with
    /// [`reclaim`](Self::reclaim) (or use [`run`](Self::run)) so the
    /// work it counts lands in the shared totals.
    pub fn lease(&self) -> Device {
        Device::with_pool(self.profile.clone(), Arc::clone(&self.pool))
    }

    /// Folds a leased device's work counters into the shared totals.
    pub fn reclaim(&self, dev: Device) {
        let mut stats = self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *stats = stats.merged(&dev.stats());
    }

    /// Lease → run → reclaim in one call; safe to invoke from any
    /// number of threads simultaneously.
    pub fn run<R>(&self, f: impl FnOnce(&mut Device) -> R) -> R {
        // The guard owns the leased device so its counted work is
        // folded back in even when `f` unwinds.
        struct Reclaim<'a>(&'a SharedDevice, Option<Device>);
        impl Drop for Reclaim<'_> {
            fn drop(&mut self) {
                if let Some(dev) = self.1.take() {
                    self.0.reclaim(dev);
                }
            }
        }
        let mut guard = Reclaim(self, Some(self.lease()));
        f(guard.1.as_mut().expect("leased device present"))
    }

    /// Total counted work of all reclaimed evaluations.
    pub fn stats(&self) -> PipelineStats {
        *self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Modeled execution time (seconds) of all reclaimed work.
    pub fn modeled_time(&self) -> f64 {
        self.profile.estimate(&self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts_and_models() {
        let mut dev = Device::nvidia();
        dev.pipeline().note_upload(1_000_000);
        assert_eq!(dev.stats().bytes_uploaded, 1_000_000);
        assert!(dev.modeled_time() > 0.0);
        assert!(dev.modeled_transfer_time() > 0.0);
        dev.reset_stats();
        assert_eq!(dev.modeled_time(), 0.0);
    }

    #[test]
    fn profiles_differ() {
        assert_ne!(
            Device::nvidia().profile().name,
            Device::intel().profile().name
        );
    }

    #[test]
    fn shared_device_accumulates_stats_across_threads() {
        let shared = std::sync::Arc::new(SharedDevice::cpu_parallel(2));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let shared = std::sync::Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                shared.run(|dev| dev.pipeline().note_upload(1000));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.stats().bytes_uploaded, 3000);
        assert!(shared.modeled_time() > 0.0);
    }

    #[test]
    fn shared_device_leases_share_one_pool() {
        let before = canvas_raster::live_worker_count();
        {
            let shared = SharedDevice::cpu_parallel(3);
            assert_eq!(canvas_raster::live_worker_count(), before + 2);
            let a = shared.lease();
            let b = shared.lease();
            // No additional workers were spawned for the leases.
            assert_eq!(canvas_raster::live_worker_count(), before + 2);
            assert!(Arc::ptr_eq(a.pool(), b.pool()));
            shared.reclaim(a);
            shared.reclaim(b);
        }
        assert_eq!(canvas_raster::live_worker_count(), before);
    }

    #[test]
    fn shared_run_reclaims_on_panic() {
        let shared = SharedDevice::cpu_parallel(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.run(|dev| {
                dev.pipeline().note_upload(77);
                panic!("query failed");
            })
        }));
        assert!(result.is_err());
        assert_eq!(shared.stats().bytes_uploaded, 77);
    }
}
