//! Execution device: a software pipeline plus the profile that models it.
//!
//! Queries execute against a [`Device`]; all pipeline work is counted and
//! can be converted to modeled GPU time (see `canvas_raster::device` for
//! the substitution rationale — this container has no physical GPU).

use canvas_raster::{DeviceProfile, Pipeline, PipelineStats, WorkerPool};
use std::sync::Arc;

/// A pipeline bound to a device profile.
///
/// A `Device` owns its pipeline and, through it, a persistent
/// [`WorkerPool`]: `cpu_parallel(n)` spawns the pool's `n - 1` workers
/// **once**, every subsequent pass re-uses them (parked on a condvar
/// between passes), and dropping the device joins them — no threads
/// outlive it (the pool-shutdown leak check asserts this).
#[derive(Debug)]
pub struct Device {
    pipeline: Pipeline,
    profile: DeviceProfile,
}

impl Device {
    pub fn new(profile: DeviceProfile) -> Self {
        Device {
            pipeline: Pipeline::new(),
            profile,
        }
    }

    /// The discrete GPU of the paper's evaluation (modeled).
    pub fn nvidia() -> Self {
        Device::new(DeviceProfile::nvidia_gtx_1070_max_q())
    }

    /// The integrated GPU of the paper's evaluation (modeled).
    pub fn intel() -> Self {
        Device::new(DeviceProfile::intel_uhd_630())
    }

    /// Single-threaded CPU execution of the tiled software pipeline —
    /// the sequential reference the parallel mode is verified against.
    pub fn cpu() -> Self {
        Device::new(DeviceProfile::cpu_parallel_n(1))
    }

    /// `n`-thread CPU execution: the same tiled pipeline with tiles and
    /// full-screen bands spread across the device's persistent worker
    /// pool (spawned here, once). Results are bit-identical to
    /// [`Device::cpu`] at any `n` (tiles merge in a fixed order;
    /// per-pixel blend order is the input order).
    pub fn cpu_parallel(threads: usize) -> Self {
        let mut dev = Device::new(DeviceProfile::cpu_parallel_n(threads));
        dev.pipeline.set_threads(threads);
        dev
    }

    /// Worker threads the pipeline fans work out to (1 = sequential).
    pub fn threads(&self) -> usize {
        self.pipeline.threads()
    }

    /// The persistent worker pool executing this device's passes
    /// (shared with every operator; sized by [`cpu_parallel`](Self::cpu_parallel)).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.pipeline.pool()
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    pub fn pipeline(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    pub fn stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    pub fn reset_stats(&mut self) {
        self.pipeline.reset_stats();
    }

    /// Modeled execution time (seconds) of all work since the last reset.
    pub fn modeled_time(&self) -> f64 {
        self.profile.estimate(&self.pipeline.stats())
    }

    /// Modeled transfer-only time (seconds).
    pub fn modeled_transfer_time(&self) -> f64 {
        self.profile.transfer_time(&self.pipeline.stats())
    }
}

impl Default for Device {
    /// Defaults to the discrete-GPU profile, the paper's primary target.
    fn default() -> Self {
        Device::nvidia()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts_and_models() {
        let mut dev = Device::nvidia();
        dev.pipeline().note_upload(1_000_000);
        assert_eq!(dev.stats().bytes_uploaded, 1_000_000);
        assert!(dev.modeled_time() > 0.0);
        assert!(dev.modeled_transfer_time() > 0.0);
        dev.reset_stats();
        assert_eq!(dev.modeled_time(), 0.0);
    }

    #[test]
    fn profiles_differ() {
        assert_ne!(
            Device::nvidia().profile().name,
            Device::intel().profile().name
        );
    }
}
