//! Minimal big-endian byte-buffer primitives used by the canvas codec.
//!
//! API-compatible subset of the `bytes` crate (`BytesMut`/`Bytes` writers
//! plus an advancing `Buf` reader over `&[u8]`), vendored because this
//! build environment has no network access. Byte order is big-endian,
//! matching `bytes`' default `put_*`/`get_*` methods, so blobs stay
//! compatible if the real crate is swapped back in.

/// Immutable byte blob (freeze result). Derefs to `[u8]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.data)
    }
}

/// Advancing big-endian reader over a byte slice.
///
/// Methods panic when the slice is too short — callers bounds-check with
/// [`Buf::remaining`] first (the codec's `need` helper).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
    fn get_f32(&mut self) -> f32;
    fn get_f64(&mut self) -> f64;
}

macro_rules! take {
    ($self:ident, $n:literal) => {{
        let (head, rest) = $self.split_at($n);
        *$self = rest;
        let mut arr = [0u8; $n];
        arr.copy_from_slice(head);
        arr
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        take!(self, 1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(take!(self, 2))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(take!(self, 4))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(take!(self, 8))
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(take!(self, 4))
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(take!(self, 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        let blob = w.freeze();
        let mut r: &[u8] = &blob;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 4 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::default();
        w.put_u32(0x0102_0304);
        let blob = w.freeze();
        assert_eq!(&blob[..], &[1, 2, 3, 4]);
        assert_eq!(blob.to_vec(), vec![1, 2, 3, 4]);
    }
}
