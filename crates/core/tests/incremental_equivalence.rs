//! The streaming-ingest bit-identity oracle.
//!
//! Every prior layer (tiling, binning, chains, SIMD) is held together
//! by the same contract — parallel ≡ sequential ≡ fused, bit for bit —
//! so the incremental dirty-tile maintenance path ships with its own:
//! a random base dataset plus a random append sequence, maintained
//! generation by generation through `patch_live_heatmap`, must equal a
//! from-scratch `render_live_heatmap` of the full dataset **exactly**
//! (texel words, cover plane, boundary index, canvas-level stats) at
//! every generation, on every device shape (1 / 2 / 8 workers) and on
//! both SIMD dispatch modes (forced scalar vs auto).
//!
//! The reference for all configurations is the sequential forced-scalar
//! from-scratch render, so the assertions also pin the cross-device and
//! cross-backend axes, not just incremental-vs-scratch per config.

use canvas_core::{patch_live_heatmap, render_live_heatmap, Canvas, Device, PointBatch, Texel};
use canvas_geom::{BBox, Point};
use canvas_raster::{Backend, Viewport};
use proptest::prelude::*;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// 192×192 → a 3×3 grid of 64-px tiles, so deltas routinely dirty a
/// strict subset of tiles.
fn vp() -> Viewport {
    Viewport::new(extent(), 192, 192)
}

/// Points straddle the viewport border: out-of-viewport appends must
/// flow through the maintenance path as zero-fragment work.
fn arb_weighted() -> impl Strategy<Value = (Point, f32)> {
    ((-15.0f64..115.0, -15.0f64..115.0), 0.25f32..8.0).prop_map(|((x, y), w)| (Point::new(x, y), w))
}

fn batch(pts: &[(Point, f32)]) -> PointBatch {
    PointBatch::with_weights(
        pts.iter().map(|&(p, _)| p).collect(),
        pts.iter().map(|&(_, w)| w).collect(),
    )
}

/// The texel plane as raw `u32` words (bitwise comparison — `f32`
/// `PartialEq` would conflate `-0.0 == 0.0` and miss NaN payloads).
fn texel_words(c: &Canvas) -> &[u32] {
    let texels: &[Texel] = c.texels().texels();
    const WORDS: usize = std::mem::size_of::<Texel>() / 4;
    unsafe { std::slice::from_raw_parts(texels.as_ptr().cast::<u32>(), texels.len() * WORDS) }
}

fn assert_bit_identical(got: &Canvas, want: &Canvas, ctx: &str) {
    assert_eq!(texel_words(got), texel_words(want), "texel words: {ctx}");
    assert_eq!(got.cover(), want.cover(), "cover plane: {ctx}");
    assert_eq!(got.boundary(), want.boundary(), "boundary index: {ctx}");
    // Canvas-level stats ride along for free once the planes match,
    // but they are the quantities the oracle's consumers read — assert
    // them by name. (PipelineStats are deliberately NOT compared: the
    // incremental path doing O(delta) device work instead of O(n) is
    // the feature, not a divergence.)
    assert_eq!(got.non_null_count(), want.non_null_count(), "{ctx}");
    assert_eq!(got.point_records(), want.point_records(), "{ctx}");
    assert_eq!(
        got.point_weight_sum().to_bits(),
        want.point_weight_sum().to_bits(),
        "{ctx}"
    );
}

/// The device/dispatch grid: `Device::cpu` and `cpu_parallel{2,8}`,
/// each forced-scalar and auto-dispatched. `None` inherits
/// `simd::active_backend()` (AVX2/SSE2 where the host has it).
fn configs() -> [(usize, Option<Backend>); 6] {
    [
        (1, Some(Backend::Scalar)),
        (1, None),
        (2, Some(Backend::Scalar)),
        (2, None),
        (8, Some(Backend::Scalar)),
        (8, None),
    ]
}

fn device(threads: usize) -> Device {
    if threads == 1 {
        Device::cpu()
    } else {
        Device::cpu_parallel(threads)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random base + random append sequence ⇒ maintained canvas equals
    /// the from-scratch render at every generation, on every config,
    /// against one shared sequential-scalar reference.
    #[test]
    fn incremental_matches_scratch_across_devices_and_backends(
        base in prop::collection::vec(arb_weighted(), 0..50),
        appends in prop::collection::vec(prop::collection::vec(arb_weighted(), 0..25), 1..4),
    ) {
        // Cumulative batches per generation, with the global sequential
        // ids a VersionedTable would assign.
        let mut cum = base.clone();
        let mut gens: Vec<PointBatch> = vec![batch(&cum)];
        for delta in &appends {
            cum.extend(delta.iter().copied());
            gens.push(batch(&cum));
        }

        // The shared reference: sequential, forced scalar, from scratch.
        let mut ref_dev = device(1);
        let refs: Vec<Canvas> = gens
            .iter()
            .map(|g| render_live_heatmap(&mut ref_dev, vp(), g, Some(Backend::Scalar)))
            .collect();

        for (threads, backend) in configs() {
            let ctx_cfg = format!("threads={threads} backend={backend:?}");

            // From-scratch renders on this config match the reference
            // (the cross-device / cross-backend axis).
            let mut dev = device(threads);
            for (g, full) in gens.iter().enumerate() {
                let scratch = render_live_heatmap(&mut dev, vp(), full, backend);
                assert_bit_identical(&scratch, &refs[g], &format!("scratch gen {g}, {ctx_cfg}"));
            }

            // Incremental maintenance on this config: render gen 0,
            // then patch forward one generation at a time. Every
            // intermediate must already be bit-identical — a compensating
            // error that cancels by the last generation would still be
            // a bug.
            let mut dev = device(threads);
            let mut maintained = render_live_heatmap(&mut dev, vp(), &gens[0], backend);
            assert_bit_identical(&maintained, &refs[0], &format!("gen 0, {ctx_cfg}"));
            for g in 1..gens.len() {
                let from_len = gens[g - 1].len();
                let (patched, out) =
                    patch_live_heatmap(&mut dev, vp(), &maintained, &gens[g], from_len, backend);
                prop_assert_eq!(out.delta_points, gens[g].len() - from_len);
                prop_assert!(out.dirty_tiles <= out.total_tiles);
                assert_bit_identical(&patched, &refs[g], &format!("patched gen {g}, {ctx_cfg}"));
                maintained = patched;
            }
        }
    }

    /// Patching may also start from *any* older generation (the engine
    /// probes predecessors newest-first but takes whatever the cache
    /// still holds): skipping generations must be as exact as stepping.
    #[test]
    fn patch_from_any_predecessor_generation(
        base in prop::collection::vec(arb_weighted(), 1..40),
        mid in prop::collection::vec(arb_weighted(), 1..20),
        last in prop::collection::vec(arb_weighted(), 1..20),
    ) {
        let mut cum = base.clone();
        let g0 = batch(&cum);
        cum.extend(mid.iter().copied());
        let g1 = batch(&cum);
        cum.extend(last.iter().copied());
        let g2 = batch(&cum);

        let mut dev = device(2);
        let want = render_live_heatmap(&mut dev, vp(), &g2, None);
        let base0 = render_live_heatmap(&mut dev, vp(), &g0, None);
        let base1 = render_live_heatmap(&mut dev, vp(), &g1, None);
        // One hop from the freshest predecessor…
        let (from1, _) = patch_live_heatmap(&mut dev, vp(), &base1, &g2, g1.len(), None);
        assert_bit_identical(&from1, &want, "patch from gen 1");
        // …and a double-size delta from two generations back.
        let (from0, out) = patch_live_heatmap(&mut dev, vp(), &base0, &g2, g0.len(), None);
        prop_assert_eq!(out.delta_points, mid.len() + last.len());
        assert_bit_identical(&from0, &want, "patch from gen 0");
    }
}
