//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! This build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples of one iteration batch each,
//! and reports min / median / mean wall-clock per iteration on stdout.
//! No plots, no statistical regression — the numbers are for tracking
//! perf trajectories in `BENCH_baseline.json`, not publication.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting benched
/// work (upstream `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark inside a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-invocation timing harness handed to benchmark closures.
pub struct Bencher {
    /// Collected per-iteration durations (seconds).
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one sample per call, `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    /// Batched variant: `routine` receives the iteration count.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// Batch sizing hint (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn report(group: &str, id: &str, samples: &[f64]) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean: f64 = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "bench {group}/{id}: min {} median {} mean {} ({} samples)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean),
        sorted.len()
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report("criterion", &id.to_string(), &b.samples);
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        // One warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("canvas", 1000);
        assert_eq!(id.to_string(), "canvas/1000");
    }
}
