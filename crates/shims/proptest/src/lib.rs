//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This build environment has no network access, so the workspace vendors
//! the slice of the proptest 1.x API its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * `Strategy` with `prop_map`, implemented for numeric ranges and
//!   tuples,
//! * `prop::collection::vec`, `prop::sample::select`,
//!   `prop::array::uniform3`.
//!
//! Differences from upstream, deliberately accepted: no shrinking (a
//! failing case reports its inputs via the assertion message instead of a
//! minimized counterexample), and generation is seeded deterministically
//! from the test name so CI runs are reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value` (upstream: a search strategy;
    /// here: plain generation, no shrink tree).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing one fixed value (upstream `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty integer range strategy");
                    let r = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + r) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod test_runner {
    /// Per-test deterministic generator (SplitMix64-seeded xorshift).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name so every test gets a stable, distinct
        /// stream across runs and platforms.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h.max(1) }
        }

        pub fn next_u64(&mut self) -> u64 {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only `cases` is honored by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with uniformly chosen length (upstream
    /// `prop::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set (upstream
    /// `prop::sample::select`).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array {
        ($name:ident, $wrapper:ident, $n:literal) => {
            /// Strategy for `[T; N]` from one element strategy.
            pub struct $wrapper<S>(S);

            pub fn $name<S: Strategy>(element: S) -> $wrapper<S> {
                $wrapper(element)
            }

            impl<S: Strategy> Strategy for $wrapper<S> {
                type Value = [S::Value; $n];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    core::array::from_fn(|_| self.0.generate(rng))
                }
            }
        };
    }
    uniform_array!(uniform2, Uniform2, 2);
    uniform_array!(uniform3, Uniform3, 3);
    uniform_array!(uniform4, Uniform4, 4);
}

/// Namespace mirror of upstream's `proptest::prelude::prop`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg ($cfg:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case}: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion `left == right` failed\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion `left == right` failed: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion `left != right` failed\n  both: {:?}",
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            x in 0.0f64..10.0,
            pair in (0u32..5, 1usize..4),
        ) {
            let (a, b) = pair;
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn collections(v in prop::collection::vec(0u8..10, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn mapped(p in (0u32..3, 0u32..3).prop_map(|(x, y)| x * 10 + y)) {
            prop_assert!(p <= 22);
        }

        #[test]
        fn arrays_and_select(
            xs in prop::array::uniform3(0u16..100),
            pick in prop::sample::select(vec![2u32, 4, 8]),
        ) {
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        let mut r1 = TestRng::for_test("abc");
        let mut r2 = TestRng::for_test("abc");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
