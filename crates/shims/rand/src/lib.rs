//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! This build environment has no network access, so the workspace vendors
//! the tiny slice of the rand 0.8 API that `canvas-datagen` uses:
//! `StdRng::seed_from_u64`, and `Rng::gen_range` over half-open and
//! inclusive ranges of floats and integers. The generator is SplitMix64
//! feeding xoshiro256** — deterministic per seed, statistically solid for
//! synthetic-workload generation, and *not* a drop-in numerical match for
//! upstream `StdRng` (sequences differ; all consumers only require
//! determinism, not specific values).

use std::ops::{Range, RangeInclusive};

/// Subset of the `rand::Rng` trait surface used by this workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
        Self: Sized,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample(self, lo, hi, inclusive)
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// xoshiro256** seeded via SplitMix64 (the reference seeding scheme).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Unifies `Range<T>` and `RangeInclusive<T>` for `gen_range`.
pub trait IntoUniformRange<T: Copy> {
    /// Returns `(low, high, inclusive)`.
    fn bounds(&self) -> (T, T, bool);
}

impl<T: Copy + PartialOrd> IntoUniformRange<T> for Range<T> {
    fn bounds(&self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Copy + PartialOrd> IntoUniformRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "gen_range: empty f64 range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        f64::sample(rng, lo as f64, hi as f64, inclusive) as f32
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128) - (lo as i128) + 1
                } else {
                    (hi as i128) - (lo as i128)
                };
                assert!(span > 0, "gen_range: empty integer range");
                // Modulo reduction; bias is < 2^-64 × span, irrelevant for
                // synthetic workload generation.
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&f));
            let i: u8 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&i));
            let u: u16 = rng.gen_range(0..96);
            assert!(u < 96);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let f = rng.gen_range(0.0..1.0);
            buckets[(f * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
