//! # canvas-engine
//!
//! The **concurrent query-serving subsystem** of the canvas-algebra
//! workspace: the layer that turns "evaluate one `Expr` fast" into
//! "serve many clients' queries at once over one shared executor".
//!
//! The paper positions the canvas algebra as the execution layer for
//! interactive spatial queries; its follow-up engine (SPADE, PAPERS.md)
//! serves that algebra behind an optimizer and a cache, and 3DPipe
//! pipelines many concurrent join tasks over one accelerator. This
//! crate reproduces that serving shape on the workspace's executor:
//!
//! ```text
//!  clients ──► QueryEngine::execute(query, viewport)
//!                │
//!                ├─ 1. prepare    normalize plan → structural fingerprint
//!                ├─ 2. cache      (fingerprint, viewport) → Arc<Canvas>   [budgeted LRU]
//!                ├─ 3. dedup      identical in-flight key? coalesce onto the leader
//!                ├─ 4. admission  bounded concurrency + bounded queue (shed beyond)
//!                └─ 5. execute    leased SharedDevice over ONE WorkerPool,
//!                                 per-query ticket → passes interleave FAIRLY
//!                                 (bounded quantum, no whole-query head-of-line);
//!                                 every canvas-producing SUBPLAN goes through the
//!                                 exchange: reuse a shared intermediate, subscribe
//!                                 to one in flight, or render-and-publish
//! ```
//!
//! Layer responsibilities:
//!
//! * `canvas-executor` provides the **fair pass gate** (tickets +
//!   quantum; `WorkerPool::register_ticket` / `with_ticket`) and the
//!   startup **calibration** of the minimum-work threshold,
//! * `canvas-core` provides plan **normalization + fingerprinting**
//!   (`algebra::fingerprint`, per-node with cut-point selection), the
//!   **subplan exchange hook** (`algebra::subplan`) evaluation
//!   consults at cut points, and the **shared-state eval path**
//!   (`SharedDevice`),
//! * this crate adds the [`Query`] descriptors, the budgeted
//!   [`CanvasCache`] (whole-plan roots + shared subplan intermediates
//!   in one keyspace), admission control, in-flight deduplication at
//!   both whole-plan and subplan granularity, and per-query
//!   latency/sharing metrics.
//!
//! Every cached, coalesced, or subplan-shared response is the *same*
//! `Arc<Canvas>` the original evaluation produced — bit-identical by
//! construction, and asserted against fresh single-threaded evaluation
//! in the concurrency stress tests (`tests/engine_stress.rs`,
//! `tests/subplan_sharing.rs`).
//!
//! Execution is observable end to end: [`Prepared::explain`] is
//! EXPLAIN (the annotated plan skeleton), [`Response::report`] is
//! EXPLAIN ANALYZE (the skeleton joined with the submission's span
//! tree from the always-on flight recorder), and queries that blow the
//! [`EngineConfig::slow_query_threshold`] — or are shed, fail, or
//! panic — are tail-sampled into [`QueryEngine::slow_queries`] with
//! their full measured reports (`tests/exec_reports.rs`).
//!
//! The crate-by-crate tour with the full life-of-a-query walkthrough
//! lives in `docs/ARCHITECTURE.md` at the repo root.

pub mod cache;
pub mod engine;
pub mod query;
pub mod result;

pub use cache::{CacheKey, CacheStats, CanvasCache, DataPin, EntryClass, ViewportKey};
pub use engine::{
    EngineConfig, EngineError, EngineMetrics, LatencyStats, QueryEngine, Response, Served,
};
pub use query::{Prepared, Query};
pub use result::QueryResult;

// The observability vocabulary of reports and captures, re-exported so
// engine clients handle `Response::report()` / `slow_queries()` values
// without naming `canvas_obs` themselves.
pub use canvas_obs::{CaptureReason, ExecReport, NodeReport, SlowQuery};
