//! Query descriptors — the engine's admission surface.
//!
//! Clients either hand the engine a raw algebra plan ([`Query::Plan`])
//! or one of the high-level descriptors mirroring the paper's query
//! classes (selection §4.1, heatmaps §4.1 fused, aggregation §4.3, knn
//! §4.4, Voronoi / hull / skyline §4.5, origin–destination and
//! spatio-temporal §4.6). Every descriptor resolves to a [`Prepared`]
//! form carrying:
//!
//! * the **normalized identity** — descriptors lowering to `Expr`
//!   plans are normalized through `algebra::normalize` and fingerprinted
//!   structurally, so syntactically different but equivalent
//!   submissions (and identical submissions from different clients)
//!   share cache entries and in-flight work;
//! * the **runner** — the normalized plan (evaluated through
//!   `Expr::eval`), one of the fused chain executors
//!   (`selection_heatmap`, `polygon_density_heatmap`), or one of the
//!   promoted query-class procedures (`knn`, `compute_voronoi`, …).
//!   Non-plan runners do not flow through `Expr` and are fingerprinted
//!   from their descriptor parameters directly (same identity
//!   contract: datasets by handle, query geometry and scalar
//!   parameters by value).
//!
//! Execution returns a [`QueryResult`]: the rendering classes produce
//! canvases, the promoted classes produce small derived payloads (id
//! lists, flow matrices, time series, hull rings) that ride the same
//! cache/dedup machinery.

use crate::result::QueryResult;
use canvas_core::algebra::{self, Expr, Fingerprint};
use canvas_core::canvas::{AreaSource, PointBatch};
use canvas_core::info::BlendFn;
use canvas_core::ops::{CountCond, MaskSpec, ValueMap};
use canvas_core::queries::od::TripBatch;
use canvas_core::queries::spatiotemporal::TemporalPoints;
use canvas_core::queries::{heatmap, hull, knn, od, skyline, spatiotemporal, voronoi};
use canvas_core::Device;
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;
use canvas_obs as obs;
use canvas_raster::Viewport;
use std::sync::Arc;

/// A query submitted to the engine (viewport-free: the viewport is the
/// other half of the cache key and is passed at execution time).
#[derive(Clone)]
pub enum Query {
    /// A raw algebra plan; evaluates to its canvas.
    Plan(Expr),
    /// `SELECT * FROM data WHERE Location INSIDE q` (Figure 5) — the
    /// result canvas's boundary index carries the selected records.
    SelectPoints { data: Arc<PointBatch>, q: Polygon },
    /// The fused selection heatmap `V[log](M[Mp](B[⊙](C_P, C_Q)))`.
    SelectionHeatmap { data: Arc<PointBatch>, q: Polygon },
    /// The fused choropleth `V[log](M[…](B[⊕](C_Y*, C_tag)))`.
    PolygonDensity { table: AreaSource, q: Polygon },
    /// Per-zone aggregation as the Section 4.3 scatter plan:
    /// `D*[γc](M[Mp'](B[⊙](C_P, B*[⊕](C_Y*))))` — the result canvas is
    /// the group-slot canvas (zone id → slot).
    AggregateByZone {
        data: Arc<PointBatch>,
        zones: AreaSource,
    },
    /// `SELECT * FROM D_P WHERE Location ∈ KNN(X, k)` (Section 4.4) —
    /// the circle-ladder k-nearest-neighbor query. Result:
    /// [`QueryResult::Ids`] ordered by increasing distance.
    Knn {
        data: Arc<PointBatch>,
        x: Point,
        k: u32,
    },
    /// The `ComputeVoronoi` stored procedure (Section 4.5). Result: the
    /// diagram canvas (`s[2] = (site, d², 0)` at every location). Sites
    /// hash by value, so a rebuilt site list still deduplicates.
    Voronoi { sites: Arc<Vec<Point>> },
    /// `SELECT * WHERE Origin INSIDE q1 AND Destination INSIDE q2`
    /// (Section 4.6, Figure 8(a)). Result: [`QueryResult::Ids`].
    SelectOd {
        trips: Arc<TripBatch>,
        q1: Polygon,
        q2: Polygon,
    },
    /// Trip counts for every (origin-zone, destination-zone) pair —
    /// the Section 4.6 group-by. Result: [`QueryResult::FlowMatrix`].
    OdFlowMatrix {
        trips: Arc<TripBatch>,
        origin_zones: AreaSource,
        dest_zones: AreaSource,
    },
    /// `SELECT * WHERE Location INSIDE q AND t ∈ [t0, t1)` — temporal
    /// filter then spatial refinement. Result: [`QueryResult::Ids`].
    SpatioTemporalWindow {
        data: Arc<TemporalPoints>,
        q: Polygon,
        t0: u32,
        t1: u32,
    },
    /// Per-window counts inside a region over `[t0, t1)` — the
    /// dashboard time series. Result: [`QueryResult::Series`].
    RegionTimeSeries {
        data: Arc<TemporalPoints>,
        q: Polygon,
        t0: u32,
        t1: u32,
        windows: u32,
    },
    /// Spatial skyline of the points selected by `constraint` w.r.t.
    /// the query `sites` (Section 4.5). Result: [`QueryResult::Ids`].
    Skyline {
        data: Arc<PointBatch>,
        constraint: Polygon,
        sites: Arc<Vec<Point>>,
    },
    /// Convex hull of the points selected by `q` (Section 4.5).
    /// Result: [`QueryResult::Hull`] (CCW vertex ring).
    Hull { data: Arc<PointBatch>, q: Polygon },
    /// The live-updating density heatmap over one generation of a
    /// [`VersionedTable`](canvas_core::VersionedTable) — the streaming
    /// maintained view. Identity folds the table's stable handle plus
    /// the snapshot's generation stamp, so every append retires all
    /// cached canvases of older generations (unreachable by key) while
    /// same-generation probes still hit. The engine's serve path may
    /// satisfy this query *incrementally*: if a predecessor
    /// generation's canvas is still cached, it is cloned and only the
    /// delta's dirty tiles are redrawn (provenance `incremental`).
    LiveHeatmap {
        snapshot: canvas_core::TableSnapshot,
    },
}

impl Query {
    /// Plan-diagram-style label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Query::Plan(_) => "plan",
            Query::SelectPoints { .. } => "select_points",
            Query::SelectionHeatmap { .. } => "selection_heatmap",
            Query::PolygonDensity { .. } => "polygon_density",
            Query::AggregateByZone { .. } => "aggregate_by_zone",
            Query::Knn { .. } => "knn",
            Query::Voronoi { .. } => "voronoi",
            Query::SelectOd { .. } => "select_od",
            Query::OdFlowMatrix { .. } => "od_flow_matrix",
            Query::SpatioTemporalWindow { .. } => "spatiotemporal_window",
            Query::RegionTimeSeries { .. } => "region_time_series",
            Query::Skyline { .. } => "skyline",
            Query::Hull { .. } => "hull",
            Query::LiveHeatmap { .. } => "live_heatmap",
        }
    }

    /// Resolves the descriptor to its normalized, fingerprinted,
    /// executable form.
    pub fn prepare(&self) -> Prepared {
        let label = self.label();
        match self {
            Query::Plan(e) => Prepared::from_expr(e.clone(), label),
            Query::SelectPoints { data, q } => Prepared::from_expr(
                Expr::mask(
                    MaskSpec::PointInAreas(CountCond::Ge(1)),
                    Expr::blend(
                        BlendFn::PointOverArea,
                        Expr::points(data.clone()),
                        Expr::query_polygon(q.clone(), 1),
                    ),
                ),
                label,
            ),
            Query::SelectionHeatmap { data, q } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/selection-heatmap");
                fb.handle(data, data.len()).polygon(q);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::SelectionHeatmap {
                        data: data.clone(),
                        q: q.clone(),
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::PolygonDensity { table, q } => {
                // Polygon tables hash by value like every polygon leaf,
                // so a client that rebuilds the same table still
                // deduplicates.
                let mut fb = algebra::FingerprintBuilder::new("engine/polygon-density");
                fb.word(table.len() as u64);
                for p in table.iter() {
                    fb.polygon(p);
                }
                fb.polygon(q);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::PolygonDensity {
                        table: table.clone(),
                        q: q.clone(),
                    },
                    // Table and query polygon hash by value — nothing
                    // is identified by address, nothing to pin.
                    pins: Vec::new(),
                }
            }
            Query::AggregateByZone { data, zones } => Prepared::from_expr(
                Expr::map_scatter(
                    ValueMap::area_id_slot(),
                    zones.len() as u32,
                    BlendFn::Accumulate,
                    Expr::mask(
                        MaskSpec::PointInAreas(CountCond::Ge(1)),
                        Expr::blend(
                            BlendFn::PointOverArea,
                            Expr::points(data.clone()),
                            Expr::polygon_set(zones.clone(), BlendFn::AreaCount),
                        ),
                    ),
                ),
                label,
            ),
            Query::Knn { data, x, k } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/knn");
                fb.handle(data, data.len())
                    .float(x.x)
                    .float(x.y)
                    .word(*k as u64);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::Knn {
                        data: data.clone(),
                        x: *x,
                        k: *k,
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::Voronoi { sites } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/voronoi");
                fb.word(sites.len() as u64);
                for s in sites.iter() {
                    fb.float(s.x).float(s.y);
                }
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::Voronoi {
                        sites: sites.clone(),
                    },
                    // Sites hash by value — nothing pinned by address.
                    pins: Vec::new(),
                }
            }
            Query::SelectOd { trips, q1, q2 } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/select-od");
                fb.handle(trips, trips.len()).polygon(q1).polygon(q2);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::SelectOd {
                        trips: trips.clone(),
                        q1: q1.clone(),
                        q2: q2.clone(),
                    },
                    pins: vec![trips.clone()],
                }
            }
            Query::OdFlowMatrix {
                trips,
                origin_zones,
                dest_zones,
            } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/od-flow-matrix");
                fb.handle(trips, trips.len());
                fb.word(origin_zones.len() as u64);
                for p in origin_zones.iter() {
                    fb.polygon(p);
                }
                fb.word(dest_zones.len() as u64);
                for p in dest_zones.iter() {
                    fb.polygon(p);
                }
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::OdFlowMatrix {
                        trips: trips.clone(),
                        origin_zones: origin_zones.clone(),
                        dest_zones: dest_zones.clone(),
                    },
                    pins: vec![trips.clone()],
                }
            }
            Query::SpatioTemporalWindow { data, q, t0, t1 } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/spatiotemporal-window");
                fb.handle(data, data.len())
                    .polygon(q)
                    .word(*t0 as u64)
                    .word(*t1 as u64);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::SpatioTemporalWindow {
                        data: data.clone(),
                        q: q.clone(),
                        t0: *t0,
                        t1: *t1,
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::RegionTimeSeries {
                data,
                q,
                t0,
                t1,
                windows,
            } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/region-time-series");
                fb.handle(data, data.len())
                    .polygon(q)
                    .word(*t0 as u64)
                    .word(*t1 as u64)
                    .word(*windows as u64);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::RegionTimeSeries {
                        data: data.clone(),
                        q: q.clone(),
                        t0: *t0,
                        t1: *t1,
                        windows: *windows,
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::Skyline {
                data,
                constraint,
                sites,
            } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/skyline");
                fb.handle(data, data.len()).polygon(constraint);
                fb.word(sites.len() as u64);
                for s in sites.iter() {
                    fb.float(s.x).float(s.y);
                }
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::Skyline {
                        data: data.clone(),
                        constraint: constraint.clone(),
                        sites: sites.clone(),
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::Hull { data, q } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/hull");
                fb.handle(data, data.len()).polygon(q);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::Hull {
                        data: data.clone(),
                        q: q.clone(),
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::LiveHeatmap { snapshot } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/live-heatmap");
                snapshot.fold_identity(&mut fb);
                Prepared {
                    fingerprint: fb.finish(),
                    label,
                    runner: Runner::LiveHeatmap {
                        snapshot: snapshot.clone(),
                    },
                    // The identity hashes the table handle's address
                    // (generation + length disambiguate contents); pin
                    // both the handle and the snapshot's batch.
                    pins: vec![snapshot.ident_handle(), snapshot.batch().clone()],
                }
            }
        }
    }
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Query::{}", self.label())
    }
}

/// How a prepared query executes.
pub(crate) enum Runner {
    Plan(Expr),
    SelectionHeatmap {
        data: Arc<PointBatch>,
        q: Polygon,
    },
    PolygonDensity {
        table: AreaSource,
        q: Polygon,
    },
    Knn {
        data: Arc<PointBatch>,
        x: Point,
        k: u32,
    },
    Voronoi {
        sites: Arc<Vec<Point>>,
    },
    SelectOd {
        trips: Arc<TripBatch>,
        q1: Polygon,
        q2: Polygon,
    },
    OdFlowMatrix {
        trips: Arc<TripBatch>,
        origin_zones: AreaSource,
        dest_zones: AreaSource,
    },
    SpatioTemporalWindow {
        data: Arc<TemporalPoints>,
        q: Polygon,
        t0: u32,
        t1: u32,
    },
    RegionTimeSeries {
        data: Arc<TemporalPoints>,
        q: Polygon,
        t0: u32,
        t1: u32,
        windows: u32,
    },
    Skyline {
        data: Arc<PointBatch>,
        constraint: Polygon,
        sites: Arc<Vec<Point>>,
    },
    Hull {
        data: Arc<PointBatch>,
        q: Polygon,
    },
    LiveHeatmap {
        snapshot: canvas_core::TableSnapshot,
    },
}

/// What the engine needs to *maintain* a query's cached result instead
/// of recomputing it: the snapshot to render, plus the cache identities
/// of prior generations whose canvases can be patched (newest first —
/// the freshest predecessor yields the smallest delta).
pub(crate) struct RefreshSpec {
    pub snapshot: canvas_core::TableSnapshot,
    /// `(fingerprint, prefix_len)` per predecessor generation.
    pub predecessors: Vec<(Fingerprint, usize)>,
}

/// Collects the handles a plan's fingerprint identifies **by address**
/// (point batches, literal canvases, unnamed custom transforms) so a
/// cache entry can pin them — see [`crate::cache::DataPin`].
fn collect_pins(e: &Expr, out: &mut Vec<crate::cache::DataPin>) {
    use canvas_core::algebra::SourceSpec;
    use canvas_core::ops::PositionMap;
    match e {
        Expr::Source(SourceSpec::Points(b)) => out.push(b.clone()),
        Expr::Source(SourceSpec::Literal(c)) => out.push(c.clone()),
        Expr::Source(_) => {}
        Expr::Blend { left, right, .. } => {
            collect_pins(left, out);
            collect_pins(right, out);
        }
        Expr::MultiBlend { inputs, .. } => {
            for i in inputs {
                collect_pins(i, out);
            }
        }
        Expr::Mask { input, .. } => collect_pins(input, out),
        Expr::GeomTransform { gamma, input } => {
            if let PositionMap::Custom(_) = gamma {
                // Hashed by closure address: hold a clone of the map
                // (and through it the closure Arc) alive.
                out.push(Arc::new(gamma.clone()));
            }
            collect_pins(input, out);
        }
        Expr::MapScatter { input, .. } => collect_pins(input, out),
        Expr::ValueTransform { input, .. } => collect_pins(input, out),
    }
}

/// A normalized, fingerprinted, executable query.
pub struct Prepared {
    pub fingerprint: Fingerprint,
    /// Query-class label ([`Query::label`] of the descriptor this was
    /// prepared from) — names the per-class latency histogram and the
    /// execution report.
    pub label: &'static str,
    pub(crate) runner: Runner,
    pins: Vec<crate::cache::DataPin>,
}

impl Prepared {
    fn from_expr(e: Expr, label: &'static str) -> Self {
        let normalized = algebra::normalize(e);
        let mut pins = Vec::new();
        collect_pins(&normalized, &mut pins);
        Prepared {
            fingerprint: algebra::fingerprint(&normalized),
            label,
            runner: Runner::Plan(normalized),
            pins,
        }
    }

    /// The EXPLAIN skeleton: one [`NodeReport`](obs::NodeReport) row
    /// per plan node for plan-backed queries (pre-order ids matching
    /// the evaluator's span stamps, operator labels, per-subtree
    /// fingerprints), a single descriptor row for the promoted
    /// classes. `measured == false`; the engine folds a recorded span
    /// tree in via [`ExecReport::measure`](obs::ExecReport::measure)
    /// (`Response::report()`, slow-query capture).
    pub fn explain(&self) -> obs::ExecReport {
        let fp_hex = self.fingerprint.to_string();
        let nodes = match &self.runner {
            Runner::Plan(e) => algebra::plan_nodes(e)
                .into_iter()
                .map(|n| obs::NodeReport {
                    node: n.id,
                    depth: n.depth,
                    label: n.label,
                    fingerprint: n.fingerprint.to_string(),
                    provenance: "plan".to_string(),
                    ..obs::NodeReport::default()
                })
                .collect(),
            _ => vec![obs::NodeReport {
                node: 0,
                depth: 0,
                label: self.label.to_string(),
                fingerprint: fp_hex.clone(),
                provenance: "plan".to_string(),
                ..obs::NodeReport::default()
            }],
        };
        obs::ExecReport {
            query: self.label.to_string(),
            fingerprint: fp_hex,
            provenance: "plan".to_string(),
            nodes,
            ..obs::ExecReport::default()
        }
    }

    /// The dataset handles this query's fingerprint identifies by
    /// address (the cache pins these alongside the result).
    pub fn pins(&self) -> &[crate::cache::DataPin] {
        &self.pins
    }

    /// For maintainable queries (today: [`Query::LiveHeatmap`]), the
    /// refresh spec the serve path uses to patch a cached predecessor
    /// generation instead of re-rendering from scratch. The
    /// predecessor fingerprints are derived exactly as
    /// [`Query::prepare`] derives this query's own — same builder
    /// domain, older generation stamp — so they address precisely the
    /// entries earlier submissions published.
    pub(crate) fn refresh(&self) -> Option<RefreshSpec> {
        match &self.runner {
            Runner::LiveHeatmap { snapshot } => {
                let predecessors = snapshot
                    .predecessors()
                    .map(|g| {
                        let mut fb = algebra::FingerprintBuilder::new("engine/live-heatmap");
                        snapshot.fold_identity_at(&mut fb, g);
                        (fb.finish(), snapshot.len_at(g).expect("known generation"))
                    })
                    .collect();
                Some(RefreshSpec {
                    snapshot: snapshot.clone(),
                    predecessors,
                })
            }
            _ => None,
        }
    }

    /// Evaluates on a device. The engine calls this on a leased shared
    /// device under the query's fair-share ticket; it is public so
    /// harnesses can evaluate the *identical* prepared form on a
    /// reference device (`Device::cpu`) for equivalence checks.
    pub fn execute(&self, dev: &mut Device, vp: Viewport) -> QueryResult {
        self.execute_via(dev, vp, &canvas_core::algebra::subplan::NullExchange)
    }

    /// Evaluates with a [`SubplanExchange`](canvas_core::algebra::subplan::SubplanExchange) consulted at cut points —
    /// the engine's subplan-sharing entry. Plan runners thread the
    /// exchange through `Expr::eval_via`; the fused chain runners
    /// consult it only for the operand canvases they materialize
    /// anyway (`selection_heatmap_via` / `polygon_density_heatmap_via`
    /// — fusion is never broken by a cut point); the promoted classes
    /// with a shareable interior selection (skyline, hull) thread it
    /// through their `_via` variants, while the remaining procedures
    /// run on the leased device directly (their interior batches are
    /// derived per call, so there is nothing stable to share). Results
    /// are bit-identical to [`execute`](Self::execute) regardless of
    /// what the exchange serves, because rendering is deterministic.
    ///
    /// Every non-plan runner records a per-class trace span (category
    /// `"query"`, named after [`Query::label`]) under the engine's
    /// `eval` span, stamped with `node = 0` and the result's byte size
    /// — the join key [`ExecReport::measure`](obs::ExecReport::measure)
    /// uses to attribute the runner's work to its single descriptor
    /// row. Plan runners need no extra span: the evaluator stamps one
    /// per plan node.
    pub fn execute_via(
        &self,
        dev: &mut Device,
        vp: Viewport,
        ex: &dyn canvas_core::algebra::subplan::SubplanExchange,
    ) -> QueryResult {
        if let Runner::Plan(e) = &self.runner {
            return QueryResult::Canvas(Arc::new(e.eval_via(dev, vp, ex)));
        }
        let mut class_span = obs::span(self.label, "query");
        class_span.arg_u64("node", 0);
        let result = match &self.runner {
            Runner::Plan(_) => unreachable!("handled above"),
            Runner::SelectionHeatmap { data, q } => QueryResult::Canvas(Arc::new(
                heatmap::selection_heatmap_via(dev, vp, data, q, ex).canvas,
            )),
            Runner::PolygonDensity { table, q } => QueryResult::Canvas(Arc::new(
                heatmap::polygon_density_heatmap_via(dev, vp, table, q, ex).canvas,
            )),
            Runner::Knn { data, x, k } => {
                QueryResult::Ids(Arc::new(knn::knn(dev, vp, data, *x, *k as usize)))
            }
            Runner::Voronoi { sites } => {
                QueryResult::Canvas(Arc::new(voronoi::compute_voronoi(dev, vp, sites)))
            }
            Runner::SelectOd { trips, q1, q2 } => {
                QueryResult::Ids(Arc::new(od::select_od(dev, vp, trips, q1, q2)))
            }
            Runner::OdFlowMatrix {
                trips,
                origin_zones,
                dest_zones,
            } => QueryResult::FlowMatrix(Arc::new(od::od_flow_matrix(
                dev,
                vp,
                trips,
                origin_zones,
                dest_zones,
            ))),
            Runner::SpatioTemporalWindow { data, q, t0, t1 } => QueryResult::Ids(Arc::new(
                spatiotemporal::select_in_polygon_and_window(dev, vp, data, q, *t0, *t1),
            )),
            Runner::RegionTimeSeries {
                data,
                q,
                t0,
                t1,
                windows,
            } => QueryResult::Series(Arc::new(spatiotemporal::region_time_series(
                dev, vp, data, q, *t0, *t1, *windows,
            ))),
            Runner::Skyline {
                data,
                constraint,
                sites,
            } => QueryResult::Ids(Arc::new(skyline::skyline_of_selection_via(
                dev, vp, data, constraint, sites, ex,
            ))),
            Runner::Hull { data, q } => {
                QueryResult::Hull(Arc::new(hull::hull_of_selection_via(dev, vp, data, q, ex)))
            }
            Runner::LiveHeatmap { snapshot } => QueryResult::Canvas(Arc::new(
                canvas_core::render_live_heatmap(dev, vp, snapshot.batch(), None),
            )),
        };
        class_span.arg_u64("bytes", result.size_bytes() as u64);
        result
    }

    /// The canvas-producing subexpressions of a plan-backed query
    /// (bottom-up; empty for the fused-chain runners, whose only
    /// exchanged canvases are their materialized operands). Exposed
    /// for introspection and tests.
    pub fn subplans(&self) -> Vec<algebra::Subplan> {
        match &self.runner {
            Runner::Plan(e) => algebra::subplans(e),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::Point;

    fn square(x0: f64, y0: f64, s: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + s, y0),
            Point::new(x0 + s, y0 + s),
            Point::new(x0, y0 + s),
        ])
        .unwrap()
    }

    #[test]
    fn descriptor_fingerprints_dedupe_rebuilt_geometry() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let a = Query::SelectionHeatmap {
            data: data.clone(),
            q: square(0.0, 0.0, 5.0),
        }
        .prepare();
        let b = Query::SelectionHeatmap {
            data: data.clone(),
            q: square(0.0, 0.0, 5.0),
        }
        .prepare();
        assert_eq!(a.fingerprint, b.fingerprint);
        let c = Query::SelectionHeatmap {
            data,
            q: square(0.0, 0.0, 6.0),
        }
        .prepare();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn different_query_kinds_never_collide() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let table: AreaSource = Arc::new(vec![square(0.0, 0.0, 5.0)]);
        let q = square(0.0, 0.0, 5.0);
        let fps = [
            Query::SelectPoints {
                data: data.clone(),
                q: q.clone(),
            }
            .prepare()
            .fingerprint,
            Query::SelectionHeatmap {
                data: data.clone(),
                q: q.clone(),
            }
            .prepare()
            .fingerprint,
            Query::PolygonDensity {
                table: table.clone(),
                q: q.clone(),
            }
            .prepare()
            .fingerprint,
            Query::AggregateByZone { data, zones: table }
                .prepare()
                .fingerprint,
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "kinds {i} and {j} collided");
            }
        }
    }

    #[test]
    fn plan_and_descriptor_selection_share_identity() {
        // A hand-built Figure 5 plan and the SelectPoints descriptor
        // are the same question — same fingerprint.
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let q = square(0.0, 0.0, 5.0);
        let descriptor = Query::SelectPoints {
            data: data.clone(),
            q: q.clone(),
        }
        .prepare();
        let plan = Query::Plan(Expr::mask(
            MaskSpec::PointInAreas(CountCond::Ge(1)),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data),
                Expr::query_polygon(q, 1),
            ),
        ))
        .prepare();
        assert_eq!(descriptor.fingerprint, plan.fingerprint);
    }
}
