//! Query descriptors — the engine's admission surface.
//!
//! Clients either hand the engine a raw algebra plan ([`Query::Plan`])
//! or one of the high-level descriptors mirroring the paper's query
//! classes (selection §4.1, heatmaps §4.1 fused, aggregation §4.3).
//! Every descriptor resolves to a [`Prepared`] form carrying:
//!
//! * the **normalized identity** — descriptors lowering to `Expr`
//!   plans are normalized through `algebra::normalize` and fingerprinted
//!   structurally, so syntactically different but equivalent
//!   submissions (and identical submissions from different clients)
//!   share cache entries and in-flight work;
//! * the **runner** — either the normalized plan (evaluated through
//!   `Expr::eval`) or one of the fused chain executors
//!   (`selection_heatmap`, `polygon_density_heatmap`), which do not
//!   flow through `Expr` and are fingerprinted from their descriptor
//!   parameters directly (same identity contract: datasets by handle,
//!   query geometry by value).

use canvas_core::algebra::{self, Expr, Fingerprint};
use canvas_core::canvas::{AreaSource, PointBatch};
use canvas_core::info::BlendFn;
use canvas_core::ops::{CountCond, MaskSpec, ValueMap};
use canvas_core::queries::heatmap;
use canvas_core::{Canvas, Device};
use canvas_geom::polygon::Polygon;
use canvas_raster::Viewport;
use std::sync::Arc;

/// A query submitted to the engine (viewport-free: the viewport is the
/// other half of the cache key and is passed at execution time).
#[derive(Clone)]
pub enum Query {
    /// A raw algebra plan; evaluates to its canvas.
    Plan(Expr),
    /// `SELECT * FROM data WHERE Location INSIDE q` (Figure 5) — the
    /// result canvas's boundary index carries the selected records.
    SelectPoints { data: Arc<PointBatch>, q: Polygon },
    /// The fused selection heatmap `V[log](M[Mp](B[⊙](C_P, C_Q)))`.
    SelectionHeatmap { data: Arc<PointBatch>, q: Polygon },
    /// The fused choropleth `V[log](M[…](B[⊕](C_Y*, C_tag)))`.
    PolygonDensity { table: AreaSource, q: Polygon },
    /// Per-zone aggregation as the Section 4.3 scatter plan:
    /// `D*[γc](M[Mp'](B[⊙](C_P, B*[⊕](C_Y*))))` — the result canvas is
    /// the group-slot canvas (zone id → slot).
    AggregateByZone {
        data: Arc<PointBatch>,
        zones: AreaSource,
    },
}

impl Query {
    /// Plan-diagram-style label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Query::Plan(_) => "plan",
            Query::SelectPoints { .. } => "select_points",
            Query::SelectionHeatmap { .. } => "selection_heatmap",
            Query::PolygonDensity { .. } => "polygon_density",
            Query::AggregateByZone { .. } => "aggregate_by_zone",
        }
    }

    /// Resolves the descriptor to its normalized, fingerprinted,
    /// executable form.
    pub fn prepare(&self) -> Prepared {
        match self {
            Query::Plan(e) => Prepared::from_expr(e.clone()),
            Query::SelectPoints { data, q } => Prepared::from_expr(Expr::mask(
                MaskSpec::PointInAreas(CountCond::Ge(1)),
                Expr::blend(
                    BlendFn::PointOverArea,
                    Expr::points(data.clone()),
                    Expr::query_polygon(q.clone(), 1),
                ),
            )),
            Query::SelectionHeatmap { data, q } => {
                let mut fb = algebra::FingerprintBuilder::new("engine/selection-heatmap");
                fb.handle(data, data.len()).polygon(q);
                Prepared {
                    fingerprint: fb.finish(),
                    runner: Runner::SelectionHeatmap {
                        data: data.clone(),
                        q: q.clone(),
                    },
                    pins: vec![data.clone()],
                }
            }
            Query::PolygonDensity { table, q } => {
                // Polygon tables hash by value like every polygon leaf,
                // so a client that rebuilds the same table still
                // deduplicates.
                let mut fb = algebra::FingerprintBuilder::new("engine/polygon-density");
                fb.word(table.len() as u64);
                for p in table.iter() {
                    fb.polygon(p);
                }
                fb.polygon(q);
                Prepared {
                    fingerprint: fb.finish(),
                    runner: Runner::PolygonDensity {
                        table: table.clone(),
                        q: q.clone(),
                    },
                    // Table and query polygon hash by value — nothing
                    // is identified by address, nothing to pin.
                    pins: Vec::new(),
                }
            }
            Query::AggregateByZone { data, zones } => Prepared::from_expr(Expr::map_scatter(
                ValueMap::area_id_slot(),
                zones.len() as u32,
                BlendFn::Accumulate,
                Expr::mask(
                    MaskSpec::PointInAreas(CountCond::Ge(1)),
                    Expr::blend(
                        BlendFn::PointOverArea,
                        Expr::points(data.clone()),
                        Expr::polygon_set(zones.clone(), BlendFn::AreaCount),
                    ),
                ),
            )),
        }
    }
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Query::{}", self.label())
    }
}

/// How a prepared query executes.
pub(crate) enum Runner {
    Plan(Expr),
    SelectionHeatmap { data: Arc<PointBatch>, q: Polygon },
    PolygonDensity { table: AreaSource, q: Polygon },
}

/// Collects the handles a plan's fingerprint identifies **by address**
/// (point batches, literal canvases, unnamed custom transforms) so a
/// cache entry can pin them — see [`crate::cache::DataPin`].
fn collect_pins(e: &Expr, out: &mut Vec<crate::cache::DataPin>) {
    use canvas_core::algebra::SourceSpec;
    use canvas_core::ops::PositionMap;
    match e {
        Expr::Source(SourceSpec::Points(b)) => out.push(b.clone()),
        Expr::Source(SourceSpec::Literal(c)) => out.push(c.clone()),
        Expr::Source(_) => {}
        Expr::Blend { left, right, .. } => {
            collect_pins(left, out);
            collect_pins(right, out);
        }
        Expr::MultiBlend { inputs, .. } => {
            for i in inputs {
                collect_pins(i, out);
            }
        }
        Expr::Mask { input, .. } => collect_pins(input, out),
        Expr::GeomTransform { gamma, input } => {
            if let PositionMap::Custom(_) = gamma {
                // Hashed by closure address: hold a clone of the map
                // (and through it the closure Arc) alive.
                out.push(Arc::new(gamma.clone()));
            }
            collect_pins(input, out);
        }
        Expr::MapScatter { input, .. } => collect_pins(input, out),
        Expr::ValueTransform { input, .. } => collect_pins(input, out),
    }
}

/// A normalized, fingerprinted, executable query.
pub struct Prepared {
    pub fingerprint: Fingerprint,
    pub(crate) runner: Runner,
    pins: Vec<crate::cache::DataPin>,
}

impl Prepared {
    fn from_expr(e: Expr) -> Self {
        let normalized = algebra::normalize(e);
        let mut pins = Vec::new();
        collect_pins(&normalized, &mut pins);
        Prepared {
            fingerprint: algebra::fingerprint(&normalized),
            runner: Runner::Plan(normalized),
            pins,
        }
    }

    /// The dataset handles this query's fingerprint identifies by
    /// address (the cache pins these alongside the result).
    pub fn pins(&self) -> &[crate::cache::DataPin] {
        &self.pins
    }

    /// Evaluates on a device. The engine calls this on a leased shared
    /// device under the query's fair-share ticket; it is public so
    /// harnesses can evaluate the *identical* prepared form on a
    /// reference device (`Device::cpu`) for equivalence checks.
    pub fn execute(&self, dev: &mut Device, vp: Viewport) -> Canvas {
        self.execute_via(dev, vp, &canvas_core::algebra::subplan::NullExchange)
    }

    /// Evaluates with a [`SubplanExchange`](canvas_core::algebra::subplan::SubplanExchange) consulted at cut points —
    /// the engine's subplan-sharing entry. Plan runners thread the
    /// exchange through `Expr::eval_via`; the fused chain runners
    /// consult it only for the operand canvases they materialize
    /// anyway (`selection_heatmap_via` / `polygon_density_heatmap_via`
    /// — fusion is never broken by a cut point). Results are
    /// bit-identical to [`execute`](Self::execute) regardless of what
    /// the exchange serves, because rendering is deterministic.
    pub fn execute_via(
        &self,
        dev: &mut Device,
        vp: Viewport,
        ex: &dyn canvas_core::algebra::subplan::SubplanExchange,
    ) -> Canvas {
        match &self.runner {
            Runner::Plan(e) => e.eval_via(dev, vp, ex),
            Runner::SelectionHeatmap { data, q } => {
                heatmap::selection_heatmap_via(dev, vp, data, q, ex).canvas
            }
            Runner::PolygonDensity { table, q } => {
                heatmap::polygon_density_heatmap_via(dev, vp, table, q, ex).canvas
            }
        }
    }

    /// The canvas-producing subexpressions of a plan-backed query
    /// (bottom-up; empty for the fused-chain runners, whose only
    /// exchanged canvases are their materialized operands). Exposed
    /// for introspection and tests.
    pub fn subplans(&self) -> Vec<algebra::Subplan> {
        match &self.runner {
            Runner::Plan(e) => algebra::subplans(e),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::Point;

    fn square(x0: f64, y0: f64, s: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + s, y0),
            Point::new(x0 + s, y0 + s),
            Point::new(x0, y0 + s),
        ])
        .unwrap()
    }

    #[test]
    fn descriptor_fingerprints_dedupe_rebuilt_geometry() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let a = Query::SelectionHeatmap {
            data: data.clone(),
            q: square(0.0, 0.0, 5.0),
        }
        .prepare();
        let b = Query::SelectionHeatmap {
            data: data.clone(),
            q: square(0.0, 0.0, 5.0),
        }
        .prepare();
        assert_eq!(a.fingerprint, b.fingerprint);
        let c = Query::SelectionHeatmap {
            data,
            q: square(0.0, 0.0, 6.0),
        }
        .prepare();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn different_query_kinds_never_collide() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let table: AreaSource = Arc::new(vec![square(0.0, 0.0, 5.0)]);
        let q = square(0.0, 0.0, 5.0);
        let fps = [
            Query::SelectPoints {
                data: data.clone(),
                q: q.clone(),
            }
            .prepare()
            .fingerprint,
            Query::SelectionHeatmap {
                data: data.clone(),
                q: q.clone(),
            }
            .prepare()
            .fingerprint,
            Query::PolygonDensity {
                table: table.clone(),
                q: q.clone(),
            }
            .prepare()
            .fingerprint,
            Query::AggregateByZone { data, zones: table }
                .prepare()
                .fingerprint,
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "kinds {i} and {j} collided");
            }
        }
    }

    #[test]
    fn plan_and_descriptor_selection_share_identity() {
        // A hand-built Figure 5 plan and the SelectPoints descriptor
        // are the same question — same fingerprint.
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let q = square(0.0, 0.0, 5.0);
        let descriptor = Query::SelectPoints {
            data: data.clone(),
            q: q.clone(),
        }
        .prepare();
        let plan = Query::Plan(Expr::mask(
            MaskSpec::PointInAreas(CountCond::Ge(1)),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data),
                Expr::query_polygon(q, 1),
            ),
        ))
        .prepare();
        assert_eq!(descriptor.fingerprint, plan.fingerprint);
    }
}
