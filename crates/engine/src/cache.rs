//! The memory-budgeted canvas/result cache.
//!
//! The paper's interactive setting re-evaluates the *same* plan over
//! and over: every pan/zoom step resubmits the selection or heatmap
//! plan, and returning to a recently-visited viewport re-asks an
//! already-answered question. SPADE (the served follow-up engine)
//! answers those from a result cache; this module is that cache for
//! the canvas algebra.
//!
//! Entries are keyed `(plan fingerprint, viewport)` — the fingerprint
//! captures *what* is asked (normalized plan structure, see
//! `canvas_core::algebra::fingerprint`), the viewport *where*. Values
//! are immutable shared canvases (`Arc<Canvas>`), so a hit costs one
//! reference bump and is bit-identical to the evaluation that produced
//! it, by construction.
//!
//! Eviction is least-recently-used under a **byte budget** (canvases
//! are large; entry counts are meaningless). An entry larger than the
//! whole budget is never admitted. All traffic is counted in
//! [`CacheStats`] — the serving bench's cache fields read them.

use canvas_core::algebra::Fingerprint;
use canvas_core::Canvas;
use canvas_raster::Viewport;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A type-erased keep-alive handle. Fingerprints identify big datasets
/// by `Arc` address, so every cache entry pins the dataset handles its
/// key hashed: as long as the entry is resident the address cannot be
/// freed and reused by a *different* dataset (which would alias a stale
/// canvas onto a new question).
pub type DataPin = Arc<dyn std::any::Any + Send + Sync>;

/// Hashable identity of a [`Viewport`] (bit-exact world box + grid).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewportKey {
    min: (u64, u64),
    max: (u64, u64),
    dims: (u32, u32),
}

impl From<&Viewport> for ViewportKey {
    fn from(vp: &Viewport) -> Self {
        let w = vp.world();
        ViewportKey {
            min: (w.min.x.to_bits(), w.min.y.to_bits()),
            max: (w.max.x.to_bits(), w.max.y.to_bits()),
            dims: (vp.width(), vp.height()),
        }
    }
}

/// Cache key: what is asked × where it is asked.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    pub fingerprint: Fingerprint,
    pub viewport: ViewportKey,
}

impl CacheKey {
    pub fn new(fingerprint: Fingerprint, vp: &Viewport) -> Self {
        CacheKey {
            fingerprint,
            viewport: ViewportKey::from(vp),
        }
    }
}

/// Traffic counters of a [`CanvasCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Insertions refused because the entry alone exceeds the budget.
    pub rejected_oversize: u64,
    /// Bytes currently resident.
    pub bytes: usize,
    /// High-water mark of resident bytes.
    pub peak_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over probes (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

struct Entry {
    canvas: Arc<Canvas>,
    /// Keeps the by-address-fingerprinted datasets alive (see [`DataPin`]).
    _pins: Vec<DataPin>,
    bytes: usize,
    /// Recency stamp; also the entry's key in `order`.
    tick: u64,
}

struct Inner {
    budget: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    /// Recency index: ascending tick = least recently used first.
    order: BTreeMap<u64, CacheKey>,
    stats: CacheStats,
}

/// A thread-safe budgeted LRU canvas cache (see module docs).
pub struct CanvasCache {
    inner: Mutex<Inner>,
}

impl CanvasCache {
    /// A cache holding at most `budget_bytes` of canvas planes
    /// (`Canvas::size_bytes`). A budget of 0 disables caching — every
    /// probe misses, every insert is rejected.
    pub fn new(budget_bytes: usize) -> Self {
        CanvasCache {
            inner: Mutex::new(Inner {
                budget: budget_bytes,
                tick: 0,
                map: HashMap::new(),
                order: BTreeMap::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Probes the cache, refreshing the entry's recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Canvas>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                let old = std::mem::replace(&mut entry.tick, tick);
                let canvas = Arc::clone(&entry.canvas);
                inner.order.remove(&old);
                inner.order.insert(tick, *key);
                inner.stats.hits += 1;
                Some(canvas)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, then evicts least-recently-used
    /// entries until the budget holds. `pins` are the dataset handles
    /// the key's fingerprint identified by address (see [`DataPin`]).
    /// Returns the number of evictions this insert caused.
    pub fn insert(&self, key: CacheKey, canvas: Arc<Canvas>, pins: Vec<DataPin>) -> u64 {
        let bytes = canvas.size_bytes();
        let mut inner = self.lock();
        if bytes > inner.budget {
            inner.stats.rejected_oversize += 1;
            return 0;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            // Re-insert of a live key (e.g. two leaders raced): replace.
            inner.order.remove(&old.tick);
            inner.stats.bytes -= old.bytes;
            inner.stats.entries -= 1;
        }
        inner.order.insert(tick, key);
        inner.map.insert(
            key,
            Entry {
                canvas,
                _pins: pins,
                bytes,
                tick,
            },
        );
        inner.stats.bytes += bytes;
        inner.stats.entries += 1;
        inner.stats.insertions += 1;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.bytes);

        let mut evicted = 0;
        while inner.stats.bytes > inner.budget {
            let (&lru_tick, &lru_key) = inner
                .order
                .iter()
                .next()
                .expect("over budget implies a resident entry");
            // The just-inserted entry fits the budget on its own (the
            // oversize check), so eviction always terminates before
            // removing it — unless it IS the only entry, which the
            // check makes impossible.
            debug_assert!(lru_tick != tick || inner.map.len() == 1);
            inner.order.remove(&lru_tick);
            let gone = inner.map.remove(&lru_key).expect("order/map in sync");
            inner.stats.bytes -= gone.bytes;
            inner.stats.entries -= 1;
            inner.stats.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Configured byte budget.
    pub fn budget(&self) -> usize {
        self.lock().budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            n,
            n,
        )
    }

    fn key(fp: u128, vp: &Viewport) -> CacheKey {
        CacheKey::new(Fingerprint(fp), vp)
    }

    fn canvas(n: u32) -> Arc<Canvas> {
        Arc::new(Canvas::empty(vp(n)))
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let cache = CanvasCache::new(1 << 20);
        let c = canvas(8);
        let k = key(1, &vp(8));
        assert!(cache.get(&k).is_none());
        cache.insert(k, Arc::clone(&c), Vec::new());
        let hit = cache.get(&k).expect("hit");
        assert!(Arc::ptr_eq(&hit, &c));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((0.49..0.51).contains(&s.hit_rate()));
    }

    #[test]
    fn distinct_viewports_are_distinct_entries() {
        let cache = CanvasCache::new(1 << 20);
        let k8 = key(1, &vp(8));
        let k16 = key(1, &vp(16));
        assert_ne!(k8, k16);
        cache.insert(k8, canvas(8), Vec::new());
        assert!(cache.get(&k16).is_none());
        assert!(cache.get(&k8).is_some());
    }

    #[test]
    fn lru_eviction_under_tiny_budget() {
        let one = canvas(16).size_bytes();
        // Room for two entries, not three.
        let cache = CanvasCache::new(2 * one + one / 2);
        let keys: Vec<CacheKey> = (0..3).map(|i| key(i, &vp(16))).collect();
        cache.insert(keys[0], canvas(16), Vec::new());
        cache.insert(keys[1], canvas(16), Vec::new());
        // Touch 0 so 1 is the LRU.
        assert!(cache.get(&keys[0]).is_some());
        let evicted = cache.insert(keys[2], canvas(16), Vec::new());
        assert_eq!(evicted, 1);
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= 2 * one + one / 2);
        assert!(s.peak_bytes >= s.bytes);
    }

    #[test]
    fn oversize_and_zero_budget_reject() {
        let cache = CanvasCache::new(0);
        let k = key(9, &vp(8));
        assert_eq!(cache.insert(k, canvas(8), Vec::new()), 0);
        assert!(cache.get(&k).is_none());
        let s = cache.stats();
        assert_eq!(s.rejected_oversize, 1);
        assert_eq!(s.entries, 0);
    }
}
