//! The memory-budgeted canvas/result cache.
//!
//! The paper's interactive setting re-evaluates the *same* plan over
//! and over: every pan/zoom step resubmits the selection or heatmap
//! plan, and returning to a recently-visited viewport re-asks an
//! already-answered question. SPADE (the served follow-up engine)
//! answers those from a result cache; this module is that cache for
//! the canvas algebra.
//!
//! Entries are keyed `(plan fingerprint, viewport)` — the fingerprint
//! captures *what* is asked (normalized plan structure, see
//! `canvas_core::algebra::fingerprint`), the viewport *where*. Values
//! are immutable shared [`QueryResult`]s — canvases for the rendering
//! classes, small derived payloads (id lists, flow matrices, hull
//! rings) for the promoted Sections 4.4–4.6 classes — so a hit costs
//! one reference bump and is bit-identical to the evaluation that
//! produced it, by construction. Every payload kind is byte-accounted
//! against the same LRU budget ([`QueryResult::size_bytes`]); the
//! non-canvas slice is broken out in [`CacheStats::result_bytes`].
//!
//! ## One keyspace, two entry classes
//!
//! Since subplan sharing, the cache holds two kinds of entries in
//! **one** keyspace:
//!
//! * **root** entries — whole-plan results, inserted by the engine
//!   after an evaluation ([`CanvasCache::insert`]);
//! * **shared** entries — rendered *intermediates* published at
//!   subplan cut points ([`CanvasCache::insert_shared`]), e.g. the
//!   density canvas a selection and a heatmap both need.
//!
//! The keyspace is deliberately unified: a subplan fingerprint of the
//! whole plan *is* the whole-plan fingerprint, so a root result can
//! satisfy a subplan probe (a heatmap whose interior equals an earlier
//! selection's whole plan reuses that result) and vice versa. The
//! class only affects **eviction priority** and byte accounting.
//!
//! Eviction is least-recently-used under a **byte budget** (canvases
//! are large; entry counts are meaningless), with one twist: victims
//! are drawn from the *root* class first, and shared interiors go only
//! when no root remains. A shared interior can serve every plan shape
//! containing that subplan — evicting a hot one forces re-renders
//! across many distinct queries, while an evicted root is recomputed
//! cheaply *from* the surviving interiors. An entry larger than the
//! whole budget is never admitted. All traffic is counted in
//! [`CacheStats`] — the serving bench's cache fields read them; root
//! and shared probes are tallied separately so the root hit rate stays
//! comparable across PRs.

use crate::result::QueryResult;
use canvas_core::algebra::Fingerprint;
use canvas_core::Canvas;
use canvas_raster::Viewport;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A type-erased keep-alive handle. Fingerprints identify big datasets
/// by `Arc` address, so every cache entry pins the dataset handles its
/// key hashed: as long as the entry is resident the address cannot be
/// freed and reused by a *different* dataset (which would alias a stale
/// canvas onto a new question).
pub type DataPin = Arc<dyn std::any::Any + Send + Sync>;

/// Hashable identity of a [`Viewport`] (bit-exact world box + grid).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewportKey {
    min: (u64, u64),
    max: (u64, u64),
    dims: (u32, u32),
}

impl From<&Viewport> for ViewportKey {
    fn from(vp: &Viewport) -> Self {
        let w = vp.world();
        ViewportKey {
            min: (w.min.x.to_bits(), w.min.y.to_bits()),
            max: (w.max.x.to_bits(), w.max.y.to_bits()),
            dims: (vp.width(), vp.height()),
        }
    }
}

/// Cache key: what is asked × where it is asked.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    pub fingerprint: Fingerprint,
    pub viewport: ViewportKey,
}

impl CacheKey {
    pub fn new(fingerprint: Fingerprint, vp: &Viewport) -> Self {
        CacheKey {
            fingerprint,
            viewport: ViewportKey::from(vp),
        }
    }
}

/// Eviction/accounting class of a cache entry (see module docs: one
/// keyspace, two classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryClass {
    /// A whole-plan result.
    Root,
    /// A subplan intermediate published for cross-query sharing.
    Shared,
}

/// Traffic counters of a [`CanvasCache`]. Root probes
/// ([`CanvasCache::get`]) and shared subplan probes
/// ([`CanvasCache::get_shared`]) are tallied separately; byte/entry
/// gauges cover both classes, with the shared slice broken out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Root (whole-plan) probe hits.
    pub hits: u64,
    /// Root (whole-plan) probe misses.
    pub misses: u64,
    /// Shared (subplan) probe hits.
    pub shared_hits: u64,
    /// Shared (subplan) probe misses.
    pub shared_misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Insertions refused because the entry alone exceeds the budget.
    pub rejected_oversize: u64,
    /// Bytes currently resident (both classes).
    pub bytes: usize,
    /// High-water mark of resident bytes.
    pub peak_bytes: usize,
    /// Entries currently resident (both classes).
    pub entries: usize,
    /// Bytes currently held by [`EntryClass::Shared`] intermediates.
    pub shared_bytes: usize,
    /// Entries currently held by [`EntryClass::Shared`] intermediates.
    pub shared_entries: usize,
    /// Bytes currently held by non-canvas [`QueryResult`] payloads
    /// (id lists, flow matrices, series, hull rings).
    pub result_bytes: usize,
    /// Entries currently holding non-canvas [`QueryResult`] payloads.
    pub result_entries: usize,
}

impl CacheStats {
    /// Root hits over root probes (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }

    /// Shared-subplan hits over shared probes (0 when never probed).
    pub fn shared_hit_rate(&self) -> f64 {
        let probes = self.shared_hits + self.shared_misses;
        if probes == 0 {
            0.0
        } else {
            self.shared_hits as f64 / probes as f64
        }
    }
}

struct Entry {
    value: QueryResult,
    /// Keeps the by-address-fingerprinted datasets alive (see [`DataPin`]).
    _pins: Vec<DataPin>,
    bytes: usize,
    /// Recency stamp; also the entry's key in its class's order map.
    tick: u64,
    class: EntryClass,
}

struct Inner {
    budget: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    /// Per-class recency indexes: ascending tick = least recently used
    /// first. Split so eviction can drain roots before touching shared
    /// interiors (module docs).
    root_order: BTreeMap<u64, CacheKey>,
    shared_order: BTreeMap<u64, CacheKey>,
    stats: CacheStats,
}

impl Inner {
    fn order_mut(&mut self, class: EntryClass) -> &mut BTreeMap<u64, CacheKey> {
        match class {
            EntryClass::Root => &mut self.root_order,
            EntryClass::Shared => &mut self.shared_order,
        }
    }

    /// Unlinks an entry from the map, its order index, and the byte
    /// gauges (shared slice included). Does not count an eviction.
    fn unlink(&mut self, key: &CacheKey) -> Option<Entry> {
        let entry = self.map.remove(key)?;
        self.order_mut(entry.class).remove(&entry.tick);
        self.stats.bytes -= entry.bytes;
        self.stats.entries -= 1;
        if entry.class == EntryClass::Shared {
            self.stats.shared_bytes -= entry.bytes;
            self.stats.shared_entries -= 1;
        }
        if entry.value.as_canvas().is_none() {
            self.stats.result_bytes -= entry.bytes;
            self.stats.result_entries -= 1;
        }
        Some(entry)
    }
}

/// A thread-safe budgeted LRU canvas cache (see module docs).
///
/// # Examples
///
/// ```
/// use canvas_core::algebra::Fingerprint;
/// use canvas_core::Canvas;
/// use canvas_engine::{CacheKey, CanvasCache};
/// use canvas_geom::{BBox, Point};
/// use canvas_raster::Viewport;
/// use std::sync::Arc;
///
/// let cache = CanvasCache::new(1 << 20); // 1 MiB byte budget
/// let vp = Viewport::new(
///     BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
///     8,
///     8,
/// );
/// let key = CacheKey::new(Fingerprint(42), &vp);
/// assert!(cache.get(&key).is_none());
///
/// let canvas = Arc::new(Canvas::empty(vp));
/// cache.insert(key, Arc::clone(&canvas), Vec::new());
/// // A hit returns the same shared payload — bit-identity for free.
/// assert!(Arc::ptr_eq(cache.get(&key).unwrap().canvas(), &canvas));
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct CanvasCache {
    inner: Mutex<Inner>,
}

impl CanvasCache {
    /// A cache holding at most `budget_bytes` of canvas planes
    /// (`Canvas::size_bytes`). A budget of 0 disables caching — every
    /// probe misses, every insert is rejected.
    pub fn new(budget_bytes: usize) -> Self {
        CanvasCache {
            inner: Mutex::new(Inner {
                budget: budget_bytes,
                tick: 0,
                map: HashMap::new(),
                root_order: BTreeMap::new(),
                shared_order: BTreeMap::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Probes the cache as **root** traffic, refreshing the entry's
    /// recency on a hit. Either entry class can satisfy the probe (one
    /// keyspace — module docs).
    pub fn get(&self, key: &CacheKey) -> Option<QueryResult> {
        self.probe(key, EntryClass::Root)
    }

    /// Probes the cache as **shared subplan** traffic (counted in
    /// `shared_hits`/`shared_misses`, so interior probes never skew
    /// the root hit rate). Either entry class can satisfy the probe.
    ///
    /// Subplan intermediates are always canvases; the fingerprint
    /// domains of the non-canvas query classes are disjoint from plan
    /// fingerprints, so a shared probe can never land on a derived
    /// payload — the canvas filter below is belt-and-braces.
    pub fn get_shared(&self, key: &CacheKey) -> Option<Arc<Canvas>> {
        self.probe(key, EntryClass::Shared)
            .and_then(|v| v.as_canvas().cloned())
    }

    fn probe(&self, key: &CacheKey, traffic: EntryClass) -> Option<QueryResult> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                let old = std::mem::replace(&mut entry.tick, tick);
                let class = entry.class;
                let value = entry.value.clone();
                inner.order_mut(class).remove(&old);
                inner.order_mut(class).insert(tick, *key);
                match traffic {
                    EntryClass::Root => inner.stats.hits += 1,
                    EntryClass::Shared => inner.stats.shared_hits += 1,
                }
                Some(value)
            }
            None => {
                match traffic {
                    EntryClass::Root => inner.stats.misses += 1,
                    EntryClass::Shared => inner.stats.shared_misses += 1,
                }
                None
            }
        }
    }

    /// Inserts (or refreshes) a **root** (whole-plan) entry, then
    /// evicts until the budget holds. `pins` are the dataset handles
    /// the key's fingerprint identified by address (see [`DataPin`]).
    /// Accepts any [`QueryResult`] payload (an `Arc<Canvas>` converts
    /// implicitly). Returns the number of evictions this insert caused.
    pub fn insert(&self, key: CacheKey, value: impl Into<QueryResult>, pins: Vec<DataPin>) -> u64 {
        self.insert_classed(key, value.into(), pins, EntryClass::Root)
    }

    /// Inserts a **shared subplan** intermediate (always a canvas) —
    /// lower eviction priority than roots, bytes broken out in
    /// [`CacheStats::shared_bytes`]. Returns the evictions caused.
    pub fn insert_shared(&self, key: CacheKey, canvas: Arc<Canvas>, pins: Vec<DataPin>) -> u64 {
        self.insert_classed(key, QueryResult::Canvas(canvas), pins, EntryClass::Shared)
    }

    fn insert_classed(
        &self,
        key: CacheKey,
        value: QueryResult,
        pins: Vec<DataPin>,
        class: EntryClass,
    ) -> u64 {
        let bytes = value.size_bytes();
        let mut inner = self.lock();
        if bytes > inner.budget {
            inner.stats.rejected_oversize += 1;
            return 0;
        }
        inner.tick += 1;
        let tick = inner.tick;
        // Re-insert of a live key (e.g. two leaders raced, or a subplan
        // publish lands on an existing root result): replace; the new
        // insert's class wins.
        inner.unlink(&key);
        inner.order_mut(class).insert(tick, key);
        let non_canvas = value.as_canvas().is_none();
        inner.map.insert(
            key,
            Entry {
                value,
                _pins: pins,
                bytes,
                tick,
                class,
            },
        );
        inner.stats.bytes += bytes;
        inner.stats.entries += 1;
        if class == EntryClass::Shared {
            inner.stats.shared_bytes += bytes;
            inner.stats.shared_entries += 1;
        }
        if non_canvas {
            inner.stats.result_bytes += bytes;
            inner.stats.result_entries += 1;
        }
        inner.stats.insertions += 1;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.bytes);

        let mut evicted = 0;
        while inner.stats.bytes > inner.budget {
            // Victims come from the root class first; shared interiors
            // only once no other root remains (module docs). The
            // just-inserted entry (recency stamp `tick`) is never its
            // own victim — and once it is the lone survivor the budget
            // holds by the oversize check, so the loop terminates.
            let victim = inner
                .root_order
                .iter()
                .find(|(&t, _)| t != tick)
                .or_else(|| inner.shared_order.iter().find(|(&t, _)| t != tick))
                .map(|(_, &k)| k);
            let Some(lru_key) = victim else {
                debug_assert!(inner.map.len() == 1, "only the newcomer may remain");
                break;
            };
            inner.unlink(&lru_key).expect("order/map in sync");
            inner.stats.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    /// Removes one entry outright (not counted as an eviction — the
    /// caller is retiring a superseded result, e.g. a predecessor
    /// generation's canvas after an incremental refresh published its
    /// successor). Returns whether the key was live.
    pub fn remove(&self, key: &CacheKey) -> bool {
        self.lock().unlink(key).is_some()
    }

    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Configured byte budget.
    pub fn budget(&self) -> usize {
        self.lock().budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::{BBox, Point};

    fn vp(n: u32) -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            n,
            n,
        )
    }

    fn key(fp: u128, vp: &Viewport) -> CacheKey {
        CacheKey::new(Fingerprint(fp), vp)
    }

    fn canvas(n: u32) -> Arc<Canvas> {
        Arc::new(Canvas::empty(vp(n)))
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let cache = CanvasCache::new(1 << 20);
        let c = canvas(8);
        let k = key(1, &vp(8));
        assert!(cache.get(&k).is_none());
        cache.insert(k, Arc::clone(&c), Vec::new());
        let hit = cache.get(&k).expect("hit");
        assert!(Arc::ptr_eq(hit.canvas(), &c));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((0.49..0.51).contains(&s.hit_rate()));
    }

    #[test]
    fn distinct_viewports_are_distinct_entries() {
        let cache = CanvasCache::new(1 << 20);
        let k8 = key(1, &vp(8));
        let k16 = key(1, &vp(16));
        assert_ne!(k8, k16);
        cache.insert(k8, canvas(8), Vec::new());
        assert!(cache.get(&k16).is_none());
        assert!(cache.get(&k8).is_some());
    }

    #[test]
    fn lru_eviction_under_tiny_budget() {
        let one = canvas(16).size_bytes();
        // Room for two entries, not three.
        let cache = CanvasCache::new(2 * one + one / 2);
        let keys: Vec<CacheKey> = (0..3).map(|i| key(i, &vp(16))).collect();
        cache.insert(keys[0], canvas(16), Vec::new());
        cache.insert(keys[1], canvas(16), Vec::new());
        // Touch 0 so 1 is the LRU.
        assert!(cache.get(&keys[0]).is_some());
        let evicted = cache.insert(keys[2], canvas(16), Vec::new());
        assert_eq!(evicted, 1);
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= 2 * one + one / 2);
        assert!(s.peak_bytes >= s.bytes);
    }

    #[test]
    fn one_keyspace_across_classes() {
        // A root result satisfies a shared probe and vice versa, with
        // traffic tallied per probe kind.
        let cache = CanvasCache::new(1 << 20);
        let k = key(5, &vp(8));
        cache.insert(k, canvas(8), Vec::new());
        assert!(cache.get_shared(&k).is_some());
        let k2 = key(6, &vp(8));
        cache.insert_shared(k2, canvas(8), Vec::new());
        assert!(cache.get(&k2).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
        assert_eq!((s.shared_hits, s.shared_misses), (1, 0));
        assert_eq!(s.shared_entries, 1);
        assert!(s.shared_bytes > 0 && s.shared_bytes < s.bytes);
        assert!((0.99..=1.0).contains(&s.shared_hit_rate()));
    }

    #[test]
    fn eviction_prefers_roots_over_shared_interiors() {
        let one = canvas(16).size_bytes();
        // Room for two entries, not three.
        let cache = CanvasCache::new(2 * one + one / 2);
        let shared_k = key(100, &vp(16));
        cache.insert_shared(shared_k, canvas(16), Vec::new());
        cache.insert(key(1, &vp(16)), canvas(16), Vec::new());
        // The shared interior is the LRU, but the *root* must go.
        let evicted = cache.insert(key(2, &vp(16)), canvas(16), Vec::new());
        assert_eq!(evicted, 1);
        assert!(cache.get(&key(1, &vp(16))).is_none(), "LRU root evicted");
        assert!(
            cache.get_shared(&shared_k).is_some(),
            "shared interior survived despite being least recently used"
        );
        assert!(cache.get(&key(2, &vp(16))).is_some());
    }

    #[test]
    fn shared_interiors_evict_lru_once_no_root_remains() {
        let one = canvas(16).size_bytes();
        let cache = CanvasCache::new(2 * one + one / 2);
        let keys: Vec<CacheKey> = (0..3).map(|i| key(i, &vp(16))).collect();
        cache.insert_shared(keys[0], canvas(16), Vec::new());
        cache.insert_shared(keys[1], canvas(16), Vec::new());
        assert!(cache.get_shared(&keys[0]).is_some()); // 1 becomes LRU
        let evicted = cache.insert_shared(keys[2], canvas(16), Vec::new());
        assert_eq!(evicted, 1);
        assert!(cache.get_shared(&keys[1]).is_none(), "LRU shared evicted");
        assert!(cache.get_shared(&keys[0]).is_some());
        assert!(cache.get_shared(&keys[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.shared_entries, 2);
        assert_eq!(s.shared_bytes, s.bytes);
    }

    #[test]
    fn newcomer_root_survives_a_shared_full_cache() {
        // Shared interiors fill the budget; inserting a root evicts
        // shared LRU entries, never the just-inserted root itself.
        let one = canvas(16).size_bytes();
        let cache = CanvasCache::new(2 * one + one / 2);
        cache.insert_shared(key(10, &vp(16)), canvas(16), Vec::new());
        cache.insert_shared(key(11, &vp(16)), canvas(16), Vec::new());
        let evicted = cache.insert(key(1, &vp(16)), canvas(16), Vec::new());
        assert_eq!(evicted, 1);
        assert!(cache.get(&key(1, &vp(16))).is_some(), "newcomer resident");
        assert!(cache.get_shared(&key(10, &vp(16))).is_none());
        assert!(cache.get_shared(&key(11, &vp(16))).is_some());
    }

    #[test]
    fn reinsert_across_classes_keeps_accounting_consistent() {
        let cache = CanvasCache::new(1 << 20);
        let k = key(3, &vp(16));
        let bytes = canvas(16).size_bytes();
        cache.insert_shared(k, canvas(16), Vec::new());
        assert_eq!(cache.stats().shared_bytes, bytes);
        // Same key re-published as a root: class flips, bytes counted once.
        cache.insert(k, canvas(16), Vec::new());
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, bytes);
        assert_eq!(s.shared_bytes, 0);
        assert_eq!(s.shared_entries, 0);
    }

    #[test]
    fn non_canvas_payloads_ride_the_same_budget() {
        let cache = CanvasCache::new(1 << 20);
        let k = key(7, &vp(8));
        let ids = QueryResult::Ids(Arc::new(vec![1, 2, 3]));
        let bytes = ids.size_bytes();
        cache.insert(k, ids.clone(), Vec::new());
        let hit = cache.get(&k).expect("hit");
        assert!(hit.ptr_eq(&ids), "hit is the same shared allocation");
        let s = cache.stats();
        assert_eq!((s.result_entries, s.result_bytes), (1, bytes));
        assert_eq!((s.entries, s.bytes), (1, bytes));
        // A shared probe never yields a derived payload.
        assert!(cache.get_shared(&k).is_none());
        // Replacing with a canvas clears the non-canvas slice.
        cache.insert(k, canvas(8), Vec::new());
        let s = cache.stats();
        assert_eq!((s.result_entries, s.result_bytes), (0, 0));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn oversize_and_zero_budget_reject() {
        let cache = CanvasCache::new(0);
        let k = key(9, &vp(8));
        assert_eq!(cache.insert(k, canvas(8), Vec::new()), 0);
        assert!(cache.get(&k).is_none());
        let s = cache.stats();
        assert_eq!(s.rejected_oversize, 1);
        assert_eq!(s.entries, 0);
    }
}
