//! Query results beyond canvases.
//!
//! The canvas algebra's headline queries return canvases, but the
//! paper's Sections 4.4–4.6 classes (knn, OD selection, skyline, hull,
//! time series) produce *derived* values: record-id lists, flow
//! matrices, hull rings. [`QueryResult`] is the engine's closed result
//! type over both shapes, so caching, in-flight deduplication, and the
//! response surface treat every query class uniformly — a cached knn
//! answer is the same `Arc` every hit shares, exactly like a cached
//! heatmap canvas.
//!
//! Every variant is a shared immutable payload (`Arc`), cloneable in
//! O(1), and byte-accounted ([`QueryResult::size_bytes`]) so the
//! non-canvas payloads ride the same LRU budget as canvases in
//! [`CanvasCache`](crate::CanvasCache).

use canvas_core::Canvas;
use canvas_geom::Point;
use std::sync::Arc;

/// The outcome of one served query: a canvas or one of the small
/// derived payloads the promoted query classes produce.
#[derive(Clone)]
pub enum QueryResult {
    /// A rendered canvas (selection, heatmap, choropleth, Voronoi
    /// diagram, zone aggregate, raw plan).
    Canvas(Arc<Canvas>),
    /// Sorted record ids (knn neighbors, OD selection, skyline,
    /// spatio-temporal window selection).
    Ids(Arc<Vec<u32>>),
    /// Origin-zone × destination-zone trip counts.
    FlowMatrix(Arc<Vec<Vec<u64>>>),
    /// Per-time-window counts (region time series).
    Series(Arc<Vec<u64>>),
    /// Convex-hull vertices (CCW ring).
    Hull(Arc<Vec<Point>>),
}

impl QueryResult {
    /// Payload kind for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryResult::Canvas(_) => "canvas",
            QueryResult::Ids(_) => "ids",
            QueryResult::FlowMatrix(_) => "flow_matrix",
            QueryResult::Series(_) => "series",
            QueryResult::Hull(_) => "hull",
        }
    }

    /// Heap footprint for cache byte accounting. Canvases report their
    /// plane bytes (`Canvas::size_bytes`); derived payloads report
    /// element storage plus a small fixed overhead per allocation.
    pub fn size_bytes(&self) -> usize {
        const VEC_OVERHEAD: usize = 3 * std::mem::size_of::<usize>();
        match self {
            QueryResult::Canvas(c) => c.size_bytes(),
            QueryResult::Ids(v) => VEC_OVERHEAD + v.len() * std::mem::size_of::<u32>(),
            QueryResult::FlowMatrix(m) => {
                VEC_OVERHEAD
                    + m.iter()
                        .map(|row| VEC_OVERHEAD + row.len() * std::mem::size_of::<u64>())
                        .sum::<usize>()
            }
            QueryResult::Series(v) => VEC_OVERHEAD + v.len() * std::mem::size_of::<u64>(),
            QueryResult::Hull(v) => VEC_OVERHEAD + v.len() * std::mem::size_of::<Point>(),
        }
    }

    /// The canvas payload, when this result is one.
    pub fn as_canvas(&self) -> Option<&Arc<Canvas>> {
        match self {
            QueryResult::Canvas(c) => Some(c),
            _ => None,
        }
    }

    /// The canvas payload.
    ///
    /// # Panics
    ///
    /// Panics when the result is a non-canvas payload — the convenience
    /// accessor for the canvas-producing query classes, mirroring the
    /// pre-`QueryResult` response surface.
    pub fn canvas(&self) -> &Arc<Canvas> {
        self.as_canvas().unwrap_or_else(|| {
            panic!("expected a canvas result, got {}", self.kind());
        })
    }

    /// The record-id payload, when this result is one.
    pub fn as_ids(&self) -> Option<&Arc<Vec<u32>>> {
        match self {
            QueryResult::Ids(v) => Some(v),
            _ => None,
        }
    }

    /// The flow-matrix payload, when this result is one.
    pub fn as_flow_matrix(&self) -> Option<&Arc<Vec<Vec<u64>>>> {
        match self {
            QueryResult::FlowMatrix(m) => Some(m),
            _ => None,
        }
    }

    /// The time-series payload, when this result is one.
    pub fn as_series(&self) -> Option<&Arc<Vec<u64>>> {
        match self {
            QueryResult::Series(v) => Some(v),
            _ => None,
        }
    }

    /// The hull-ring payload, when this result is one.
    pub fn as_hull(&self) -> Option<&Arc<Vec<Point>>> {
        match self {
            QueryResult::Hull(v) => Some(v),
            _ => None,
        }
    }

    /// `Arc::ptr_eq` over the payload — the cache-hit identity test
    /// ("a hit is the *same* shared allocation"), uniform across
    /// variants.
    pub fn ptr_eq(&self, other: &QueryResult) -> bool {
        match (self, other) {
            (QueryResult::Canvas(a), QueryResult::Canvas(b)) => Arc::ptr_eq(a, b),
            (QueryResult::Ids(a), QueryResult::Ids(b)) => Arc::ptr_eq(a, b),
            (QueryResult::FlowMatrix(a), QueryResult::FlowMatrix(b)) => Arc::ptr_eq(a, b),
            (QueryResult::Series(a), QueryResult::Series(b)) => Arc::ptr_eq(a, b),
            (QueryResult::Hull(a), QueryResult::Hull(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl From<Arc<Canvas>> for QueryResult {
    fn from(c: Arc<Canvas>) -> Self {
        QueryResult::Canvas(c)
    }
}

impl From<Canvas> for QueryResult {
    fn from(c: Canvas) -> Self {
        QueryResult::Canvas(Arc::new(c))
    }
}

impl std::fmt::Debug for QueryResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QueryResult::{}({} bytes)",
            self.kind(),
            self.size_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting_scales_with_payload() {
        let small = QueryResult::Ids(Arc::new(vec![1, 2, 3]));
        let big = QueryResult::Ids(Arc::new((0..1000).collect()));
        assert!(small.size_bytes() < big.size_bytes());
        assert!(big.size_bytes() >= 4000);
        let m = QueryResult::FlowMatrix(Arc::new(vec![vec![0; 4]; 4]));
        assert!(m.size_bytes() >= 4 * 4 * 8);
    }

    #[test]
    fn identity_is_per_allocation() {
        let a = QueryResult::Ids(Arc::new(vec![1]));
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let c = QueryResult::Ids(Arc::new(vec![1]));
        assert!(!a.ptr_eq(&c), "equal values, distinct allocations");
        let s = QueryResult::Series(Arc::new(vec![1]));
        assert!(!s.ptr_eq(&a), "variants never alias");
    }

    #[test]
    #[should_panic(expected = "expected a canvas result")]
    fn canvas_accessor_panics_on_derived_payloads() {
        let _ = QueryResult::Ids(Arc::new(vec![])).canvas();
    }
}
