//! The concurrent query-serving engine.
//!
//! [`QueryEngine::execute`] is the single entry point: any number of
//! client threads call it simultaneously with a [`Query`] and a
//! viewport. A submission flows through four stations:
//!
//! ```text
//! submit ── prepare ──► cache probe ──► in-flight dedup ──► admission ──► fair-share execute
//!            (normalize     hit? ◄─┐        follower waits      bounded       leased device,
//!             + fingerprint)  done ┘        for the leader     concurrency    per-query ticket
//! ```
//!
//! * **Prepare** normalizes the plan and computes its structural
//!   fingerprint (`canvas_core::algebra::fingerprint`).
//! * **Cache** — a hit returns the shared canvas immediately
//!   (bit-identical by construction: the cache stores the `Arc` the
//!   original evaluation produced).
//! * **In-flight dedup** — a submission whose key is already being
//!   evaluated *coalesces*: it parks until the leader publishes, then
//!   shares that result instead of re-evaluating.
//! * **Admission control** bounds concurrently-executing queries and
//!   the waiting line behind them; beyond the line the engine sheds
//!   load ([`EngineError::Overloaded`]) instead of collapsing.
//! * **Execution** leases a device over the shared worker pool
//!   ([`SharedDevice`]) under a fresh pass-scheduling ticket, so
//!   concurrent queries interleave *passes* fairly on the pool
//!   instead of queueing whole-query behind a lock.

use crate::cache::{CacheKey, CacheStats, CanvasCache, DataPin};
use crate::query::{Prepared, Query};
use crate::result::QueryResult;
use canvas_core::algebra::subplan::{SubplanAccess, SubplanExchange, SubplanLease, SubplanSource};
use canvas_core::algebra::Fingerprint;
use canvas_core::{Canvas, SharedDevice};
use canvas_obs as obs;
use canvas_raster::{Calibration, SchedulerStats, Viewport};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Concurrent executors of the shared worker pool (1 = inline).
    pub threads: usize,
    /// Queries evaluating simultaneously; more wait at admission.
    pub max_concurrent: usize,
    /// Submissions allowed to wait at admission before the engine
    /// sheds load.
    pub max_queue: usize,
    /// Canvas cache budget in bytes; 0 disables caching.
    pub cache_budget_bytes: usize,
    /// Measure pool dispatch latency at startup and derive
    /// `Policy::min_parallel_items` from it (the static default stays
    /// as fallback).
    pub calibrate: bool,
    /// Share rendered intermediates *across* queries at subplan
    /// granularity: cut-point canvases are published to the cache and
    /// to concurrent queries subscribing to the same in-flight
    /// subplan (see `canvas_core::algebra::subplan`). Off = PR 4
    /// whole-plan caching only.
    pub share_subplans: bool,
    /// Tail-sampling bar of the always-on flight recorder: a query
    /// whose end-to-end service time exceeds this (or that was shed,
    /// failed, or panicked) has its span tree promoted from the
    /// bounded per-thread rings into the retained slow-query log
    /// ([`QueryEngine::slow_queries`]) as a measured
    /// [`ExecReport`](canvas_obs::ExecReport). Fast queries pay only
    /// the ring pushes. `Duration::MAX` disables capture entirely.
    pub slow_query_threshold: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineConfig {
            threads,
            max_concurrent: threads.max(2),
            max_queue: 64,
            cache_budget_bytes: 256 << 20,
            calibrate: true,
            share_subplans: true,
            // An interactive engine's latency budget is ~100ms (the
            // paper's interactivity bar); captures start at 2.5× that
            // so the log holds genuine outliers, not the daily p95.
            slow_query_threshold: Duration::from_millis(250),
        }
    }
}

/// Why a submission was not served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Admission queue full; retry later (classic load shedding).
    Overloaded { executing: usize, queued: usize },
    /// The leader evaluating this same query panicked; the coalesced
    /// followers get the panic message instead of hanging.
    LeaderFailed(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Overloaded { executing, queued } => {
                write!(
                    f,
                    "engine overloaded ({executing} executing, {queued} queued)"
                )
            }
            EngineError::LeaderFailed(msg) => write!(f, "deduplicated leader failed: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// How a served response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Evaluated here, now cached.
    Computed,
    /// Returned straight from the canvas cache.
    CacheHit,
    /// Shared an in-flight evaluation of the same key.
    Coalesced,
    /// Maintained incrementally: a cached predecessor generation's
    /// canvas was cloned and only the append delta's dirty tiles were
    /// redrawn, then published under this generation's fingerprint
    /// (bit-identical to a full render — the full render was avoided,
    /// not approximated).
    Incremental,
}

/// A served query result.
pub struct Response {
    /// The result payload — shared, immutable; a canvas for the
    /// rendering classes, a derived value (ids, flow matrix, series,
    /// hull ring) for the promoted classes.
    pub result: QueryResult,
    pub fingerprint: Fingerprint,
    pub served: Served,
    /// Time spent waiting at admission (zero for hits/coalesced).
    pub queue_wait: Duration,
    /// Evaluation time (zero for cache hits; the leader's wall time is
    /// *not* charged to coalesced followers — they report their park
    /// time here).
    pub exec: Duration,
    /// End-to-end service time of this submission.
    pub service: Duration,
    /// The query's span-track id (0 when both tracing and the flight
    /// recorder are off) — [`report`](Self::report) joins the flight
    /// rings on it.
    query_span: u64,
    /// The prepared form that served this response; carries the
    /// EXPLAIN skeleton ([`Prepared::explain`]).
    prepared: Arc<Prepared>,
}

impl Response {
    /// The result canvas — the convenience accessor for the
    /// canvas-producing query classes.
    ///
    /// # Panics
    ///
    /// Panics when the response carries a non-canvas payload; use
    /// [`Response::result`] and its `as_*` accessors for the promoted
    /// classes.
    pub fn canvas(&self) -> &Arc<Canvas> {
        self.result.canvas()
    }

    /// EXPLAIN ANALYZE for this response: the prepared plan's skeleton
    /// annotated with this submission's measured spans, collected from
    /// the always-on flight rings (per-node wall time, passes, tiles,
    /// bytes, provenance, and the engine-station timings). Collect
    /// promptly — ring slots recycle under later traffic; rows whose
    /// spans were already overwritten report `provenance: missing`.
    /// When the recorder was off for this query the report stays
    /// plan-only measurements-wise (`spans_joined == 0`).
    pub fn report(&self) -> obs::ExecReport {
        let mut r = self.prepared.explain();
        r.provenance = match self.served {
            Served::Computed => "computed",
            Served::CacheHit => "cache",
            Served::Coalesced => "coalesced",
            Served::Incremental => "incremental",
        }
        .to_string();
        r.service_ns = self.service.as_nanos().min(u64::MAX as u128) as u64;
        let be = canvas_raster::simd::active_backend();
        r.simd_backend = be.name().to_string();
        if self.query_span == 0 {
            return r;
        }
        let spans = obs::flight::collect(self.query_span);
        r.measure(self.query_span, &spans)
    }
}

/// One in-flight evaluation other submitters can latch onto. The slot
/// carries the full outcome — including a structured [`EngineError`] —
/// so a follower coalesced onto a shed leader still sees `Overloaded`
/// (the retry signal), not a generic failure.
struct InFlight {
    slot: Mutex<Option<Result<QueryResult, EngineError>>>,
    done: Condvar,
}

/// One in-flight **subplan** render other queries can subscribe to —
/// the interior sibling of [`InFlight`]. Unlike the whole-plan slot,
/// failure here is not an error surface: a subscriber to a failed
/// leader simply falls back to rendering the subplan privately.
struct SubFlight {
    state: Mutex<SubState>,
    done: Condvar,
}

enum SubState {
    /// Leader still rendering.
    Pending,
    /// Published: subscribers share this canvas **directly from the
    /// slot** — even if the cache evicted (or never admitted) it, a
    /// mid-subscription canvas can never go stale or vanish.
    Ready(Arc<Canvas>),
    /// Leader dropped its lease without publishing (panic / bail):
    /// subscribers recompute privately.
    Failed,
}

/// The engine's [`SubplanExchange`]: probes the shared cache, then the
/// subplan in-flight table; first-comers lead (and publish through
/// [`SubLease`]), later arrivals subscribe. Created per-execution so
/// it can carry the query's dataset pins into published entries.
struct Exchange<'e> {
    engine: &'e QueryEngine,
    /// Pins of the whole query — a superset of any subplan's pins
    /// (over-pinning is harmless; under-pinning would let a dataset
    /// address be reused under a live key).
    pins: &'e [DataPin],
}

impl SubplanExchange for Exchange<'_> {
    fn acquire(&self, fp: Fingerprint, vp: &Viewport) -> SubplanAccess<'_> {
        self.engine.acquire_subplan(fp, vp, self.pins)
    }
}

/// A leader's publish obligation for one subplan. Dropping it without
/// [`publish`](SubplanLease::publish) (leader panicked) resolves
/// subscribers with [`SubState::Failed`] so they fall back instead of
/// hanging.
struct SubLease<'e> {
    engine: &'e QueryEngine,
    key: CacheKey,
    flight: Arc<SubFlight>,
    pins: Vec<DataPin>,
    published: bool,
}

impl SubplanLease for SubLease<'_> {
    fn publish(&mut self, canvas: &Arc<Canvas>) {
        self.published = true;
        // Cache first (may be rejected under a tiny budget — the slot
        // below still serves current subscribers), then wake them.
        self.engine.cache.insert_shared(
            self.key,
            Arc::clone(canvas),
            std::mem::take(&mut self.pins),
        );
        self.engine
            .resolve_subplan(&self.key, &self.flight, SubState::Ready(Arc::clone(canvas)));
        self.engine.metrics_mut().subplan_published += 1;
    }
}

impl Drop for SubLease<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.engine
                .resolve_subplan(&self.key, &self.flight, SubState::Failed);
        }
    }
}

/// Counting semaphore with a bounded **FIFO** waiting line: waiters
/// hold arrival sequence numbers and only the front waiter may take a
/// freed permit, so a fresh arrival can never barge past a parked one
/// (unbounded tail latency would contradict the engine's fair-share
/// story).
struct Admission {
    state: Mutex<AdmState>,
    freed: Condvar,
}

struct AdmState {
    permits: usize,
    executing: usize,
    next_seq: u64,
    queue: std::collections::VecDeque<u64>,
    peak_queued: usize,
    shed: u64,
}

impl Admission {
    fn new(permits: usize) -> Self {
        Admission {
            state: Mutex::new(AdmState {
                permits: permits.max(1),
                executing: 0,
                next_seq: 0,
                queue: std::collections::VecDeque::new(),
                peak_queued: 0,
                shed: 0,
            }),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self, max_queue: usize) -> Result<(), EngineError> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Fast path only when nobody is queued — otherwise join the
        // line behind them even if a permit is momentarily free.
        if st.executing < st.permits && st.queue.is_empty() {
            st.executing += 1;
            return Ok(());
        }
        if st.queue.len() >= max_queue {
            st.shed += 1;
            return Err(EngineError::Overloaded {
                executing: st.executing,
                queued: st.queue.len(),
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push_back(seq);
        st.peak_queued = st.peak_queued.max(st.queue.len());
        while !(st.executing < st.permits && st.queue.front() == Some(&seq)) {
            st = self
                .freed
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.queue.pop_front();
        st.executing += 1;
        // The next-in-line waiter may also be eligible (multiple
        // permits freed while we were at the front).
        drop(st);
        self.freed.notify_all();
        Ok(())
    }

    fn release(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.executing -= 1;
        drop(st);
        // Only the front waiter may proceed; wake everyone and let the
        // predicate sort it out (lines are short — max_queue bounded).
        self.freed.notify_all();
    }
}

/// Computed-response cadence of load-aware minimum-work recalibration
/// (see `QueryEngine::maybe_recalibrate`): frequent enough to track
/// load shifts on a serving engine, rare enough that the ~µs kernel
/// probe never shows up in service latency.
const RECALIBRATE_EVERY: u64 = 64;

/// Retained slow-query captures before the log evicts its oldest
/// entry. Reports are small (a few KB of strings + counters), so the
/// cap bounds the recorder's retained footprint, not its coverage —
/// `slow_captured` counts every promotion including evicted ones.
const SLOW_LOG_CAP: usize = 64;

/// Latency distribution (seconds) over one response class — a
/// histogram snapshot, not a mean-only aggregate: tail percentiles
/// (p95/p99) are what a serving engine is tuned by, and a mean hides
/// exactly the latencies that matter.
///
/// Recording happens in the engine's live `canvas_obs::Histogram`s
/// (lock-free, nanosecond-bucketed); this type is the point-in-time
/// copy [`QueryEngine::metrics`] folds into [`EngineMetrics`].
#[derive(Clone, Debug, Default)]
pub struct LatencyStats(pub obs::HistogramSnapshot);

impl LatencyStats {
    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    pub fn mean_secs(&self) -> f64 {
        self.0.mean_secs()
    }

    pub fn max_secs(&self) -> f64 {
        self.0.max_secs()
    }

    /// Median latency in seconds (log-bucket interpolated, ≤ 2×
    /// relative error).
    pub fn p50_secs(&self) -> f64 {
        self.0.quantile_secs(0.50)
    }

    pub fn p95_secs(&self) -> f64 {
        self.0.quantile_secs(0.95)
    }

    pub fn p99_secs(&self) -> f64 {
        self.0.quantile_secs(0.99)
    }
}

/// Engine-level counters (cache traffic lives in [`CacheStats`],
/// scheduler fairness in [`SchedulerStats`]).
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    pub submitted: u64,
    pub computed: u64,
    pub cache_hits: u64,
    pub coalesced: u64,
    pub shed: u64,
    pub failed: u64,
    pub peak_queued: usize,
    /// Subplan acquisitions served without a render — shared-cache
    /// hits plus in-flight subscriptions (cut-point granularity).
    pub subplan_hits: u64,
    /// The subscription slice of `subplan_hits`: renders avoided by
    /// latching onto another query's *in-flight* intermediate.
    pub shared_renders_avoided: u64,
    /// Cut-point canvases published for cross-query sharing.
    pub subplan_published: u64,
    /// Subscriptions resolved by a failed leader — the subscriber
    /// fell back to rendering privately (correctness is unaffected).
    pub subplan_fallbacks: u64,
    /// Point batches appended to versioned tables through
    /// [`QueryEngine::ingest_append`] (each bumps its table's
    /// generation and retires that table's cached canvases by key).
    pub ingest_appends: u64,
    /// Queries served by patching a cached predecessor generation's
    /// canvas instead of re-rendering ([`Served::Incremental`]).
    pub incremental_refreshes: u64,
    /// Tiles redrawn across all incremental refreshes (the O(delta)
    /// work actually done; compare against `full_renders_avoided` ×
    /// tiles-per-viewport for the work skipped).
    pub dirty_tiles_redrawn: u64,
    /// Full O(dataset) renders avoided because a predecessor canvas
    /// was patchable. **Not** incremented when the predecessor was
    /// evicted and the engine fell back to a full render.
    pub full_renders_avoided: u64,
    /// End-to-end latency of successfully served submissions.
    pub service: LatencyStats,
    /// Evaluation-only latency of computed submissions.
    pub exec: LatencyStats,
    /// Admission-wait latency of computed submissions.
    pub queue_wait: LatencyStats,
    /// SIMD backend the tile kernels dispatch to on this host
    /// (`"scalar"`, `"sse2"`, or `"avx2"` — selected once at first
    /// kernel use, `CANVAS_SIMD` overrides).
    pub simd_backend: &'static str,
    /// Texel lanes per vector operation of that backend (1 = scalar).
    pub simd_width: usize,
    /// Load-aware minimum-work recalibrations applied since
    /// construction (see `WorkerPool::recalibrate`).
    pub recalibrations: u64,
}

impl EngineMetrics {
    /// Hits + coalesced over all served submissions: the fraction of
    /// traffic that never re-evaluated anything.
    pub fn reuse_rate(&self) -> f64 {
        let served = self.computed + self.cache_hits + self.coalesced;
        if served == 0 {
            0.0
        } else {
            (self.cache_hits + self.coalesced) as f64 / served as f64
        }
    }
}

/// The serving engine (see module docs). Cheap to share: wrap in an
/// `Arc` and hand clones to every client thread.
///
/// # Examples
///
/// Serve a Figure-5 selection; a resubmission is a cache hit returning
/// the *same* shared canvas:
///
/// ```
/// use canvas_core::prelude::*;
/// use canvas_engine::{EngineConfig, Query, QueryEngine, Served};
/// use canvas_geom::{BBox, Point, Polygon};
/// use std::sync::Arc;
///
/// let engine = QueryEngine::with_config(EngineConfig {
///     threads: 2,
///     calibrate: false, // skip startup measurement in examples
///     ..EngineConfig::default()
/// });
/// let data = Arc::new(PointBatch::from_points(vec![Point::new(2.0, 2.0)]));
/// let q = Polygon::simple(vec![
///     Point::new(1.0, 1.0),
///     Point::new(5.0, 1.0),
///     Point::new(5.0, 5.0),
///     Point::new(1.0, 5.0),
/// ])
/// .unwrap();
/// let vp = Viewport::new(
///     BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
///     16,
///     16,
/// );
///
/// let first = engine.execute(&Query::SelectPoints { data: data.clone(), q: q.clone() }, vp)?;
/// assert_eq!(first.served, Served::Computed);
/// assert_eq!(first.canvas().point_records(), vec![0]);
///
/// let again = engine.execute(&Query::SelectPoints { data, q }, vp)?;
/// assert_eq!(again.served, Served::CacheHit);
/// assert!(Arc::ptr_eq(first.canvas(), again.canvas()));
/// # Ok::<(), canvas_engine::EngineError>(())
/// ```
pub struct QueryEngine {
    shared: SharedDevice,
    cache: CanvasCache,
    admission: Admission,
    max_queue: usize,
    inflight: Mutex<HashMap<CacheKey, Arc<InFlight>>>,
    /// In-flight **subplan** renders (cut-point granularity) — the
    /// interior sibling of `inflight`.
    subflight: Mutex<HashMap<CacheKey, Arc<SubFlight>>>,
    share_subplans: bool,
    metrics: Mutex<EngineMetrics>,
    /// Named counters + latency histograms, snapshot-able as JSON /
    /// Prometheus ([`QueryEngine::metrics_json`]). The histograms below
    /// are cached handles into this registry, so hot-path recording
    /// never takes the registry's name-lookup lock.
    registry: obs::Registry,
    /// End-to-end latency of successfully served submissions (ns).
    lat_service: Arc<obs::Histogram>,
    /// Evaluation-only latency of computed submissions (ns).
    lat_exec: Arc<obs::Histogram>,
    /// Admission-wait latency of computed submissions (ns).
    lat_queue_wait: Arc<obs::Histogram>,
    calibration: Option<Calibration>,
    /// Load-aware recalibrations applied (see `maybe_recalibrate`).
    recalibrations: std::sync::atomic::AtomicU64,
    /// Tail-sampling bar (see [`EngineConfig::slow_query_threshold`]).
    slow_query_threshold: Duration,
    /// Retained slow-query captures ([`QueryEngine::slow_queries`]).
    slow_log: obs::SlowQueryLog,
}

/// Records a duration into a nanosecond-bucketed histogram.
fn record_dur(h: &obs::Histogram, d: Duration) {
    h.record(d.as_nanos().min(u64::MAX as u128) as u64);
}

impl QueryEngine {
    /// Engine over a fresh `threads`-wide pool with default limits.
    pub fn new(threads: usize) -> Self {
        Self::with_config(EngineConfig {
            threads,
            ..EngineConfig::default()
        })
    }

    pub fn with_config(cfg: EngineConfig) -> Self {
        let mut pool = canvas_raster::WorkerPool::new(cfg.threads.max(1));
        let calibration = if cfg.calibrate {
            Some(pool.calibrate())
        } else {
            None
        };
        let threads = pool.threads();
        let shared = SharedDevice::with_pool(
            canvas_raster::DeviceProfile::cpu_parallel_n(threads),
            Arc::new(pool),
        );
        let registry = obs::Registry::new();
        let lat_service = registry.histogram("service_ns");
        let lat_exec = registry.histogram("exec_ns");
        let lat_queue_wait = registry.histogram("queue_wait_ns");
        let engine = QueryEngine {
            shared,
            cache: CanvasCache::new(cfg.cache_budget_bytes),
            admission: Admission::new(cfg.max_concurrent),
            max_queue: cfg.max_queue,
            inflight: Mutex::new(HashMap::new()),
            subflight: Mutex::new(HashMap::new()),
            share_subplans: cfg.share_subplans,
            metrics: Mutex::new(EngineMetrics::default()),
            registry,
            lat_service,
            lat_exec,
            lat_queue_wait,
            calibration,
            recalibrations: std::sync::atomic::AtomicU64::new(0),
            slow_query_threshold: cfg.slow_query_threshold,
            slow_log: obs::SlowQueryLog::new(SLOW_LOG_CAP),
        };
        // Stamp the process-level metadata into both the metrics
        // registry and the trace header, so snapshots and trace files
        // are self-describing across hosts.
        engine.refresh_process_meta();
        engine
    }

    /// Upserts process-level metadata (SIMD backend, calibration
    /// state, host core count) into the metrics registry **and** the
    /// global trace sink header. Called at construction and refreshed
    /// on every snapshot/export, so `recalibrations` and the live
    /// minimum-work threshold stay current.
    fn refresh_process_meta(&self) {
        let be = canvas_raster::simd::active_backend();
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let min_items = self.shared.pool().effective_min_parallel_items();
        let recals = self
            .recalibrations
            .load(std::sync::atomic::Ordering::Relaxed);
        let meta: [(&str, String); 5] = [
            ("simd_backend", be.name().to_string()),
            ("simd_width", be.width().to_string()),
            ("host_cores", host_cores.to_string()),
            ("min_parallel_items", min_items.to_string()),
            ("recalibrations", recals.to_string()),
        ];
        for (k, v) in meta {
            self.registry.set_meta(k, v.clone());
            obs::sink().set_meta(k, v);
        }
    }

    /// The subplan-sharing path of [`Exchange`]: shared-cache probe →
    /// in-flight subscription → leadership. Blocking here is
    /// deadlock-free: a leader only ever acquires subplans strictly
    /// contained in the one it is rendering, so wait chains descend
    /// strictly shrinking subtrees (see `algebra::subplan`).
    ///
    /// The whole-plan `inflight` table and this `subflight` table are
    /// deliberately **not** bridged while work is in flight (the
    /// unified keyspace kicks in once a render lands in the cache): a
    /// subplan acquirer always holds an admission permit, but a
    /// whole-plan leader may still be *waiting* for one — subscribing
    /// across the tables could park every permit holder behind a
    /// leader that can never be admitted. The cost is one duplicated
    /// render in the narrow window where a whole plan and an identical
    /// interior subplan overlap in flight; correctness is unaffected.
    fn acquire_subplan(
        &self,
        fp: Fingerprint,
        vp: &Viewport,
        pins: &[DataPin],
    ) -> SubplanAccess<'_> {
        let key = CacheKey::new(fp, vp);
        if let Some(canvas) = self.cache.get_shared(&key) {
            self.metrics_mut().subplan_hits += 1;
            return SubplanAccess::Ready(canvas, SubplanSource::Cache);
        }
        let (flight, leader) = {
            let mut subflight = self
                .subflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match subflight.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(SubFlight {
                        state: Mutex::new(SubState::Pending),
                        done: Condvar::new(),
                    });
                    subflight.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            return SubplanAccess::Lead(Box::new(SubLease {
                engine: self,
                key,
                flight,
                pins: pins.to_vec(),
                published: false,
            }));
        }
        // Subscribe: park until the leader resolves, then either share
        // its canvas or fall back to a private render.
        let mut state = flight
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match &*state {
                SubState::Pending => {
                    state = flight
                        .done
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                SubState::Ready(canvas) => {
                    let canvas = Arc::clone(canvas);
                    drop(state);
                    let mut m = self.metrics_mut();
                    m.subplan_hits += 1;
                    m.shared_renders_avoided += 1;
                    return SubplanAccess::Ready(canvas, SubplanSource::Subscribed);
                }
                SubState::Failed => {
                    drop(state);
                    self.metrics_mut().subplan_fallbacks += 1;
                    return SubplanAccess::Compute;
                }
            }
        }
    }

    /// Resolves a subplan flight (publish or failure), wakes its
    /// subscribers, and retires the table entry.
    fn resolve_subplan(&self, key: &CacheKey, flight: &Arc<SubFlight>, outcome: SubState) {
        {
            let mut state = flight
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *state = outcome;
        }
        flight.done.notify_all();
        let mut subflight = self
            .subflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(current) = subflight.get(key) {
            // Only the leader resolves its own flight, but guard the
            // removal anyway: a racing future leader could in principle
            // have inserted a fresh flight under the same key.
            if Arc::ptr_eq(current, flight) {
                subflight.remove(key);
            }
        }
    }

    /// Serves one query (callable from any number of threads).
    ///
    /// Each call records a per-query span tree — `execute → prepare →
    /// cache_probe → inflight_wait → admission_wait → eval → …` down
    /// through the executor's pass and tile-stream spans — under its
    /// own query track, into the always-on flight rings (and, when
    /// `canvas_obs::set_tracing` is enabled, the tracing sink too; see
    /// `docs/OBSERVABILITY.md`). On completion the service time is
    /// checked against [`EngineConfig::slow_query_threshold`]
    /// (**tail sampling**): slow, shed, failed, and panicked queries
    /// have their span trees promoted into the retained slow-query
    /// log as measured [`ExecReport`](canvas_obs::ExecReport)s
    /// ([`QueryEngine::slow_queries`]). Successful responses expose
    /// the same report on demand via [`Response::report`].
    pub fn execute(&self, query: &Query, vp: Viewport) -> Result<Response, EngineError> {
        let t_submit = Instant::now();
        let mut root = obs::span_with_query("execute", "engine");
        root.arg_str("query", || query.label().to_string());
        let query_id = root.query();
        self.metrics_mut().submitted += 1;
        let prepared = Arc::new({
            let _s = obs::span("prepare", "engine");
            query.prepare()
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.serve(&prepared, vp, t_submit, query_id)
        }));
        // Close the root span *before* the tail-sampling decision so
        // its record is resident in the flight ring when `collect`
        // joins the tree.
        drop(root);
        let service = t_submit.elapsed();
        let reason = match &outcome {
            Ok(Ok(_)) if service > self.slow_query_threshold => {
                Some(obs::CaptureReason::SlowService)
            }
            Ok(Ok(_)) => None,
            Ok(Err(EngineError::Overloaded { .. })) => Some(obs::CaptureReason::Shed),
            Ok(Err(EngineError::LeaderFailed(_))) => Some(obs::CaptureReason::Failed),
            Err(_) => Some(obs::CaptureReason::Panicked),
        };
        if let Some(reason) = reason {
            let served = match &outcome {
                Ok(Ok(resp)) => Some(resp.served),
                _ => None,
            };
            self.capture_slow(&prepared, query_id, service, reason, served);
        }
        match outcome {
            Ok(result) => result.map(|mut resp| {
                resp.service = service;
                resp
            }),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The station pipeline of one submission (cache probe → in-flight
    /// dedup → admission → fair-share eval). Split from
    /// [`execute`](Self::execute) so the wrapper can close the root
    /// span and tail-sample *every* terminal outcome — including the
    /// eval-panic path, which unwinds through here after publishing
    /// `LeaderFailed` to its followers.
    fn serve(
        &self,
        prepared: &Arc<Prepared>,
        vp: Viewport,
        t_submit: Instant,
        query_id: u64,
    ) -> Result<Response, EngineError> {
        let key = CacheKey::new(prepared.fingerprint, &vp);
        // Per-class service latency (one histogram per query class,
        // e.g. `service_ns_knn`) alongside the all-traffic histogram.
        let lat_class = self
            .registry
            .histogram(&format!("service_ns_{}", prepared.label));

        // Station 1: the cache.
        let probe = {
            let _s = obs::span("cache_probe", "engine");
            self.cache.get(&key)
        };
        if let Some(result) = probe {
            let service = t_submit.elapsed();
            record_dur(&self.lat_service, service);
            record_dur(&lat_class, service);
            self.metrics_mut().cache_hits += 1;
            return Ok(Response {
                result,
                fingerprint: prepared.fingerprint,
                served: Served::CacheHit,
                queue_wait: Duration::ZERO,
                exec: Duration::ZERO,
                service: t_submit.elapsed(),
                query_span: query_id,
                prepared: Arc::clone(prepared),
            });
        }

        // Station 2: in-flight dedup — one leader per key, everyone
        // else coalesces onto its result.
        let (flight, leader) = {
            let mut inflight = self
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match inflight.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(InFlight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inflight.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            let t_park = Instant::now();
            let _wait = obs::span("inflight_wait", "engine");
            let mut slot = flight
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while slot.is_none() {
                slot = flight
                    .done
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let outcome = slot.as_ref().expect("published").clone();
            drop(slot);
            let exec = t_park.elapsed();
            let service = t_submit.elapsed();
            return match outcome {
                Ok(result) => {
                    record_dur(&self.lat_service, service);
                    record_dur(&lat_class, service);
                    self.metrics_mut().coalesced += 1;
                    Ok(Response {
                        result,
                        fingerprint: prepared.fingerprint,
                        served: Served::Coalesced,
                        queue_wait: Duration::ZERO,
                        exec,
                        service,
                        query_span: query_id,
                        prepared: Arc::clone(prepared),
                    })
                }
                Err(e) => {
                    self.metrics_mut().failed += 1;
                    Err(e)
                }
            };
        }

        // Leader path. Whatever happens (admission shed, panic,
        // success), the in-flight entry must be resolved and removed,
        // or followers hang forever.
        //
        // Re-probe the cache first: between our miss above and winning
        // leadership here, the previous leader for this key may have
        // published (it inserts into the cache *before* retiring its
        // in-flight entry, so this double-check can never miss a
        // completed evaluation).
        let reprobe = {
            let _s = obs::span("cache_probe", "engine");
            self.cache.get(&key)
        };
        if let Some(result) = reprobe {
            self.publish(&key, &flight, Ok(result.clone()));
            let service = t_submit.elapsed();
            record_dur(&self.lat_service, service);
            record_dur(&lat_class, service);
            self.metrics_mut().cache_hits += 1;
            return Ok(Response {
                result,
                fingerprint: prepared.fingerprint,
                served: Served::CacheHit,
                queue_wait: Duration::ZERO,
                exec: Duration::ZERO,
                service: t_submit.elapsed(),
                query_span: query_id,
                prepared: Arc::clone(prepared),
            });
        }
        let t_adm = Instant::now();
        let admitted = {
            let _s = obs::span("admission_wait", "engine");
            self.admission.acquire(self.max_queue)
        };
        let queue_wait = t_adm.elapsed();
        if let Err(e) = admitted {
            // shed/peak_queued are tracked by the admission gate itself
            // and folded in by `metrics()`. Followers coalesced onto
            // this key receive the same structured `Overloaded`.
            self.publish(&key, &flight, Err(e.clone()));
            return Err(e);
        }

        // Station 5: incremental maintenance. A maintainable query (a
        // live heatmap over a versioned table) probes the cache for a
        // canvas of a *predecessor generation* — newest first — before
        // paying a full render. A hit is cloned and patched with only
        // the append delta's dirty tiles on the leased device, then
        // published under *this* generation's fingerprint. The probe
        // sits after admission because the patch is device work and
        // must respect the concurrency bound; a miss (predecessor
        // evicted, or first generation) falls through to the full
        // render below.
        let refresh_base = prepared.refresh().and_then(|spec| {
            let _s = obs::span("refresh_probe", "engine");
            spec.predecessors.iter().find_map(|&(prev_fp, prev_len)| {
                let prev_key = CacheKey::new(prev_fp, &vp);
                match self.cache.get(&prev_key) {
                    Some(QueryResult::Canvas(base)) => {
                        Some((prev_key, base, prev_len, spec.snapshot.clone()))
                    }
                    _ => None,
                }
            })
        });

        let t_exec = Instant::now();
        let ticket = self.shared.pool().register_ticket();
        let pool = Arc::clone(self.shared.pool());
        let mut eval_span = obs::span("eval", "engine");
        eval_span.arg_u64("ticket", ticket);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.with_ticket(ticket, || {
                self.shared.run(|dev| {
                    if let Some((_, base, prev_len, snapshot)) = &refresh_base {
                        // Mirror `execute_via`'s per-class span so the
                        // report's descriptor row (node 0) still joins
                        // this submission's measured work.
                        let mut class_span = obs::span(prepared.label, "query");
                        class_span.arg_u64("node", 0);
                        let mut span = obs::span("incremental_patch", "engine");
                        let (canvas, out) = canvas_core::patch_live_heatmap(
                            dev,
                            vp,
                            base,
                            snapshot.batch(),
                            *prev_len,
                            None,
                        );
                        span.arg_u64("dirty_tiles", out.dirty_tiles as u64);
                        span.arg_u64("total_tiles", out.total_tiles as u64);
                        span.arg_u64("delta_points", out.delta_points as u64);
                        drop(span);
                        let result = QueryResult::Canvas(Arc::new(canvas));
                        class_span.arg_u64("bytes", result.size_bytes() as u64);
                        return (result, Some(out));
                    }
                    let result = if self.share_subplans {
                        // Cut-point canvases flow through the engine's
                        // exchange: reused if another query rendered
                        // them, published otherwise. A panic mid-plan
                        // drops any unpublished leases, resolving
                        // their subscribers with the fallback signal.
                        let ex = Exchange {
                            engine: self,
                            pins: prepared.pins(),
                        };
                        prepared.execute_via(dev, vp, &ex)
                    } else {
                        prepared.execute(dev, vp)
                    };
                    (result, None)
                })
            })
        }));
        drop(eval_span);
        self.admission.release();
        let exec = t_exec.elapsed();

        match outcome {
            Ok((result, patched)) => {
                // The entry pins the query's dataset handles: fingerprints
                // identify datasets by Arc address, so a cached result
                // must keep those addresses alive (a freed-and-reused
                // allocation could otherwise alias a different dataset
                // onto an old key).
                self.cache
                    .insert(key, result.clone(), prepared.pins().to_vec());
                if patched.is_some() {
                    if let Some((prev_key, ..)) = &refresh_base {
                        // The patched predecessor is superseded: retire
                        // its entry eagerly so the stale generation's
                        // bytes are reclaimed, not merely unreachable
                        // by new probes.
                        self.cache.remove(prev_key);
                    }
                }
                self.publish(&key, &flight, Ok(result.clone()));
                let service = t_submit.elapsed();
                record_dur(&self.lat_exec, exec);
                record_dur(&self.lat_queue_wait, queue_wait);
                record_dur(&self.lat_service, service);
                record_dur(&lat_class, service);
                let computed = {
                    let mut m = self.metrics_mut();
                    if let Some(out) = &patched {
                        m.incremental_refreshes += 1;
                        m.dirty_tiles_redrawn += out.dirty_tiles as u64;
                        m.full_renders_avoided += 1;
                    } else {
                        m.computed += 1;
                    }
                    m.computed
                };
                self.maybe_recalibrate(computed);
                Ok(Response {
                    result,
                    fingerprint: prepared.fingerprint,
                    served: if patched.is_some() {
                        Served::Incremental
                    } else {
                        Served::Computed
                    },
                    queue_wait,
                    exec,
                    service,
                    query_span: query_id,
                    prepared: Arc::clone(prepared),
                })
            }
            Err(payload) => {
                let msg = panic_message(&payload);
                self.publish(&key, &flight, Err(EngineError::LeaderFailed(msg)));
                self.metrics_mut().failed += 1;
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Publishes the leader's outcome to coalesced followers and
    /// retires the in-flight entry.
    fn publish(
        &self,
        key: &CacheKey,
        flight: &Arc<InFlight>,
        outcome: Result<QueryResult, EngineError>,
    ) {
        {
            let mut slot = flight
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *slot = Some(outcome);
        }
        flight.done.notify_all();
        let mut inflight = self
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inflight.remove(key);
    }

    /// Promotes one completed query's spans out of the flight rings
    /// into the retained slow-query log (the tail-sampling *keep*
    /// decision — see [`EngineConfig::slow_query_threshold`]).
    fn capture_slow(
        &self,
        prepared: &Prepared,
        query_id: u64,
        service: Duration,
        reason: obs::CaptureReason,
        served: Option<Served>,
    ) {
        if query_id == 0 {
            // Recorder (and tracing) off: nothing was recorded to keep.
            return;
        }
        let service_ns = service.as_nanos().min(u64::MAX as u128) as u64;
        let mut report = prepared.explain();
        report.provenance = match served {
            Some(Served::Computed) => "computed",
            Some(Served::CacheHit) => "cache",
            Some(Served::Coalesced) => "coalesced",
            Some(Served::Incremental) => "incremental",
            None => reason.as_str(),
        }
        .to_string();
        report.service_ns = service_ns;
        report.simd_backend = canvas_raster::simd::active_backend().name().to_string();
        let spans = obs::flight::collect(query_id);
        let report = report.measure(query_id, &spans);
        self.slow_log.push(obs::SlowQuery {
            query_id,
            label: prepared.label.to_string(),
            reason,
            service_ns,
            report,
        });
    }

    /// The retained slow-query captures, oldest first: every query
    /// whose service time crossed the threshold (or that was shed,
    /// failed, or panicked), with its full measured
    /// [`ExecReport`](canvas_obs::ExecReport). Bounded — the log
    /// evicts its oldest entry beyond the 64-capture cap; the
    /// `slow_captured` registry counter keeps the lifetime total.
    pub fn slow_queries(&self) -> Vec<obs::SlowQuery> {
        self.slow_log.entries()
    }

    fn metrics_mut(&self) -> std::sync::MutexGuard<'_, EngineMetrics> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Engine counters snapshot (latency fields are histogram
    /// snapshots — see [`LatencyStats`]).
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = self.metrics_mut().clone();
        let st = self
            .admission
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.peak_queued = st.peak_queued;
        m.shed = st.shed;
        drop(st);
        m.service = LatencyStats(self.lat_service.snapshot());
        m.exec = LatencyStats(self.lat_exec.snapshot());
        m.queue_wait = LatencyStats(self.lat_queue_wait.snapshot());
        let be = canvas_raster::simd::active_backend();
        m.simd_backend = be.name();
        m.simd_width = be.width();
        m.recalibrations = self
            .recalibrations
            .load(std::sync::atomic::Ordering::Relaxed);
        m
    }

    /// Service-latency distribution of one query class (keyed by
    /// [`Query::label`], e.g. `"knn"` → histogram `service_ns_knn`).
    /// Empty when the class has not been served yet.
    pub fn class_latency(&self, class: &str) -> LatencyStats {
        LatencyStats(
            self.registry
                .histogram(&format!("service_ns_{class}"))
                .snapshot(),
        )
    }

    /// Syncs the counter side of the registry from the engine's
    /// internal counters (the histograms record in place) and refreshes
    /// the process metadata.
    fn sync_registry(&self) {
        let m = self.metrics();
        let counters: [(&str, u64); 19] = [
            ("queries_submitted", m.submitted),
            ("queries_computed", m.computed),
            ("cache_hits", m.cache_hits),
            ("coalesced", m.coalesced),
            ("shed", m.shed),
            ("failed", m.failed),
            ("peak_queued", m.peak_queued as u64),
            ("subplan_hits", m.subplan_hits),
            ("subplan_shared_renders_avoided", m.shared_renders_avoided),
            ("subplan_published", m.subplan_published),
            ("subplan_fallbacks", m.subplan_fallbacks),
            ("ingest_appends", m.ingest_appends),
            ("incremental_refreshes", m.incremental_refreshes),
            ("dirty_tiles_redrawn", m.dirty_tiles_redrawn),
            ("full_renders_avoided", m.full_renders_avoided),
            // Observability health: tracing-sink drops at its cap,
            // slow-query promotions, and flight-ring loss accounting
            // (normal fast-path recycling vs spans a capture wanted
            // but the rings had already overwritten).
            ("obs_dropped_spans", obs::sink().dropped()),
            ("slow_captured", self.slow_log.captured()),
            ("flight_recycled", obs::flight::recycled()),
            ("flight_dropped", obs::flight::dropped()),
        ];
        for (name, value) in counters {
            self.registry.counter(name).set(value);
        }
        self.refresh_process_meta();
    }

    /// The full metrics registry as a JSON object: process metadata,
    /// counters, and latency histograms with count/mean/max and
    /// p50/p95/p99 (nanoseconds).
    pub fn metrics_json(&self) -> String {
        self.sync_registry();
        self.registry.snapshot_json()
    }

    /// The full metrics registry as Prometheus text exposition
    /// (histograms as summaries with quantile labels, metadata as a
    /// `canvas_engine_process_info` gauge).
    pub fn metrics_prometheus(&self) -> String {
        self.sync_registry();
        self.registry.snapshot_prometheus("canvas_engine")
    }

    /// Load-aware recalibration, every [`RECALIBRATE_EVERY`] computed
    /// responses: re-times one texel of the dispatched blend kernel
    /// (`per_texel_probe_ns`, so the measurement reflects the active
    /// SIMD width *and* current machine load) and re-derives the pool's
    /// minimum-work threshold against the dispatch latency measured at
    /// startup. Lock-free apply; a skipped or degenerate refresh leaves
    /// the previous threshold standing. No-op when startup calibration
    /// was disabled — there is no dispatch measurement to derive from.
    fn maybe_recalibrate(&self, computed: u64) {
        let Some(cal) = self.calibration.as_ref() else {
            return;
        };
        if !cal.applied || !computed.is_multiple_of(RECALIBRATE_EVERY) {
            return;
        }
        let per_item_ns = canvas_raster::simd::per_texel_probe_ns::<canvas_core::Texel>();
        if self
            .shared
            .pool()
            .recalibrate(cal.dispatch_ns_per_pass, per_item_ns)
            .is_some()
        {
            self.recalibrations
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Appends a point batch to a versioned table through the engine,
    /// counting it toward `ingest_appends`. The append bumps the
    /// table's generation, which retires every cached canvas of older
    /// generations *by key* (their fingerprints embed the old stamp) —
    /// the next [`Query::LiveHeatmap`] submission over a fresh
    /// snapshot either patches a predecessor's canvas incrementally or
    /// re-renders, but can never be served stale bits.
    pub fn ingest_append(
        &self,
        table: &canvas_core::VersionedTable,
        batch: &canvas_core::PointBatch,
    ) -> canvas_core::AppendOutcome {
        let mut span = obs::span("ingest_append", "engine");
        let out = table.append(batch);
        span.arg_u64("generation", out.generation);
        span.arg_u64("appended", out.appended as u64);
        self.metrics_mut().ingest_appends += 1;
        out
    }

    /// Canvas cache traffic snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fair-gate grant accounting of the shared pool.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.shared.pool().scheduler_stats()
    }

    /// The shared evaluation substrate (pool + accumulated work stats).
    pub fn shared(&self) -> &SharedDevice {
        &self.shared
    }

    /// The startup calibration, if [`EngineConfig::calibrate`] ran and
    /// produced a measurement.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query evaluation panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_report_simd_backend() {
        let engine = QueryEngine::with_config(EngineConfig {
            threads: 1,
            calibrate: false,
            ..EngineConfig::default()
        });
        let m = engine.metrics();
        assert!(["scalar", "sse2", "avx2"].contains(&m.simd_backend));
        assert!(m.simd_width >= 1);
        assert_eq!(m.recalibrations, 0, "no traffic, no recalibration");
    }

    #[test]
    fn admission_sheds_beyond_queue_bound() {
        let adm = Admission::new(1);
        adm.acquire(4).unwrap();
        // Permit taken, queue bound 0: immediate shed.
        assert!(matches!(
            adm.acquire(0),
            Err(EngineError::Overloaded { queued: 0, .. })
        ));
        adm.release();
        adm.acquire(0).unwrap();
        adm.release();
        let st = adm
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(st.shed, 1);
        assert_eq!(st.executing, 0);
    }

    #[test]
    fn admission_is_fifo_no_barging() {
        let adm = Arc::new(Admission::new(1));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        adm.acquire(8).unwrap(); // main holds the only permit
        let w = {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                adm.acquire(8).unwrap();
                order.lock().unwrap().push("first-waiter");
                adm.release();
            })
        };
        // Let the first waiter park, then race a late arrival against
        // the permit release: with FIFO handoff the late arrival must
        // queue behind the parked waiter even if it observes a free
        // permit first.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let late = {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                adm.acquire(8).unwrap();
                order.lock().unwrap().push("late-arrival");
                adm.release();
            })
        };
        adm.release();
        w.join().unwrap();
        late.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["first-waiter", "late-arrival"]);
    }
}
