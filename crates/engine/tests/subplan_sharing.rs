//! Cross-query subplan sharing: correctness and accounting.
//!
//! The tentpole claim: a selection and a heatmap over the same dataset
//! and viewport render their shared intermediates (the density canvas
//! `C_P`, the query-polygon canvas `C_Q`, the blended canvas) **once**,
//! whether the second query arrives after the first finished (shared
//! cache hit) or while it is still rendering (in-flight subscription)
//! — and sharing is invisible in results: every response stays
//! bit-identical to a fresh single-threaded `Device::cpu` evaluation.
//!
//! The failure paths matter as much as the happy path: a subscriber
//! whose leader panics, or whose published canvas the cache never
//! admitted (tiny budget — the "evicted mid-subscription" blind spot),
//! must fall back to a private render, never panic or see a stale
//! canvas.

use canvas_core::prelude::*;
use canvas_engine::{EngineConfig, Query, QueryEngine};
use canvas_geom::{BBox, Point, Polygon};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn vp() -> Viewport {
    Viewport::new(extent(), 64, 64)
}

fn data() -> Arc<PointBatch> {
    Arc::new(PointBatch::from_points(canvas_datagen::taxi_pickups(
        &extent(),
        2_000,
        42,
    )))
}

fn district() -> Polygon {
    canvas_datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(80.0, 80.0)),
        24,
        0.4,
        7,
    )
}

fn config(budget: usize) -> EngineConfig {
    EngineConfig {
        threads: 2,
        max_concurrent: 4,
        max_queue: 64,
        cache_budget_bytes: budget,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    }
}

/// The heatmap as an algebra plan sharing the selection's interior:
/// `V[log](M[texel](B[⊙](C_P, C_Q)))` over the same data + polygon as
/// `Query::SelectPoints` (which lowers to `M[Mp'](B[⊙](C_P, C_Q))`).
fn heatmap_plan(data: &Arc<PointBatch>, q: &Polygon) -> Query {
    Query::Plan(Expr::value_transform(
        "log",
        Arc::new(|_, mut t: Texel| {
            if let Some(mut p) = t.get(0) {
                p.v2 = (1.0 + p.v1).ln();
                t.set(0, p);
            }
            t
        }),
        Expr::mask(
            MaskSpec::Texel("point ∧ area", Arc::new(|t: &Texel| t.has(0) && t.has(2))),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data.clone()),
                Expr::query_polygon(q.clone(), 1),
            ),
        ),
    ))
}

fn assert_canvas_eq(got: &Canvas, want: &Canvas, ctx: &str) {
    assert_eq!(got.texels(), want.texels(), "{ctx}: texel planes differ");
    assert_eq!(got.cover(), want.cover(), "{ctx}: cover planes differ");
    assert_eq!(
        got.boundary().points(),
        want.boundary().points(),
        "{ctx}: point entries differ"
    );
    assert_eq!(
        got.boundary().areas(),
        want.boundary().areas(),
        "{ctx}: area entries differ"
    );
}

fn cpu_reference(q: &Query, vp: Viewport) -> Arc<Canvas> {
    let mut dev = Device::cpu();
    Arc::clone(q.prepare().execute(&mut dev, vp).canvas())
}

#[test]
fn selection_then_heatmap_renders_shared_density_once() {
    let data = data();
    let q = district();
    let selection = Query::SelectPoints {
        data: data.clone(),
        q: q.clone(),
    };
    let heatmap = heatmap_plan(&data, &q);
    // Distinct questions: the whole-plan cache can NOT serve one for
    // the other.
    assert_ne!(
        selection.prepare().fingerprint,
        heatmap.prepare().fingerprint
    );
    // But their planned cut points overlap — the blend, C_P, and C_Q
    // subtrees carry identical fingerprints in both plans.
    let cut_fps = |q: &Query| -> std::collections::HashSet<_> {
        q.prepare()
            .subplans()
            .iter()
            .filter(|s| s.is_cut && s.depth > 0)
            .map(|s| s.fingerprint)
            .collect()
    };
    let overlap = cut_fps(&selection).intersection(&cut_fps(&heatmap)).count();
    assert!(overlap >= 3, "selection and heatmap share ≥ 3 cut points");

    let engine = QueryEngine::with_config(config(256 << 20));
    let r_sel = engine.execute(&selection, vp()).unwrap();
    let prims_after_selection = engine.shared().stats().primitives;
    assert!(prims_after_selection > 0, "selection rasterized geometry");

    let r_heat = engine.execute(&heatmap, vp()).unwrap();
    // The heatmap's interior blend is the selection's interior blend:
    // served from the shared cache, so the heatmap rasterized NOTHING
    // new — the shared density canvas was rendered exactly once.
    assert_eq!(
        engine.shared().stats().primitives,
        prims_after_selection,
        "heatmap re-rasterized a shared intermediate"
    );

    let m = engine.metrics();
    assert!(m.subplan_hits >= 1, "blend subplan must hit: {m:?}");
    // Selection published blend + C_P + C_Q; the heatmap published its
    // texel-mask stage above the shared blend.
    assert!(m.subplan_published >= 3, "{m:?}");
    assert_eq!(m.shared_renders_avoided, 0, "sequential ⇒ no subscription");
    let cs = engine.cache_stats();
    assert!(cs.shared_entries > 0 && cs.shared_bytes > 0, "{cs:?}");

    // Sharing is invisible in results.
    assert_canvas_eq(
        r_sel.canvas(),
        &cpu_reference(&selection, vp()),
        "selection",
    );
    assert_canvas_eq(r_heat.canvas(), &cpu_reference(&heatmap, vp()), "heatmap");
}

#[test]
fn fused_heatmap_shares_the_query_polygon_canvas() {
    // The fused-chain heatmap materializes exactly one operand (C_Q)
    // and exchanges exactly that: after an algebra-path selection over
    // the same polygon, the fused heatmap reuses the cached C_Q.
    let data = data();
    let q = district();
    let selection = Query::SelectPoints {
        data: data.clone(),
        q: q.clone(),
    };
    let fused = Query::SelectionHeatmap {
        data: data.clone(),
        q: q.clone(),
    };
    let engine = QueryEngine::with_config(config(256 << 20));
    engine.execute(&selection, vp()).unwrap();
    let hits_before = engine.metrics().subplan_hits;
    let r = engine.execute(&fused, vp()).unwrap();
    assert!(
        engine.metrics().subplan_hits > hits_before,
        "fused heatmap must reuse the selection's C_Q render"
    );
    assert_canvas_eq(r.canvas(), &cpu_reference(&fused, vp()), "fused heatmap");
}

#[test]
fn sharing_off_keeps_subplan_counters_silent() {
    let data = data();
    let q = district();
    let engine = QueryEngine::with_config(EngineConfig {
        share_subplans: false,
        ..config(256 << 20)
    });
    let selection = Query::SelectPoints {
        data: data.clone(),
        q: q.clone(),
    };
    let r1 = engine.execute(&selection, vp()).unwrap();
    let r2 = engine.execute(&heatmap_plan(&data, &q), vp()).unwrap();
    let m = engine.metrics();
    assert_eq!(
        (
            m.subplan_hits,
            m.subplan_published,
            m.shared_renders_avoided
        ),
        (0, 0, 0),
        "{m:?}"
    );
    assert_eq!(engine.cache_stats().shared_entries, 0);
    assert_canvas_eq(r1.canvas(), &cpu_reference(&selection, vp()), "selection");
    assert_canvas_eq(
        r2.canvas(),
        &cpu_reference(&heatmap_plan(&data, &q), vp()),
        "heatmap",
    );
}

// ---------------------------------------------------------------------
// In-flight subscription: the second query latches onto the first's
// still-rendering intermediate. A gated Value Transform holds the
// leader inside the shared subplan so the test controls the overlap.
// ---------------------------------------------------------------------

struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// `M[label](V[gated](C_P))` — two different labels give two distinct
/// root plans sharing the gated `V[gated](C_P)` subplan. The leader
/// entering the V pass raises `entered`, then parks until the gate
/// opens (64×64 stays under `min_parallel_items`, so the pass runs
/// inline on the leader's thread and blocks nobody else). `boom_once`
/// makes the first evaluation panic after the gate opens.
fn gated_query(
    data: &Arc<PointBatch>,
    label: &'static str,
    gate: &Arc<Gate>,
    entered: &Arc<AtomicBool>,
    boom_once: Option<Arc<AtomicBool>>,
) -> Query {
    let gate = Arc::clone(gate);
    let entered = Arc::clone(entered);
    Query::Plan(Expr::mask(
        MaskSpec::Texel(label, Arc::new(|_: &Texel| true)),
        Expr::value_transform(
            "gated",
            Arc::new(move |_, t: Texel| {
                entered.store(true, Ordering::SeqCst);
                gate.wait_open();
                if let Some(fuse) = &boom_once {
                    if !fuse.swap(true, Ordering::SeqCst) {
                        panic!("gated subplan leader failed");
                    }
                }
                t
            }),
            Expr::points(data.clone()),
        ),
    ))
}

/// Runs the gated leader/subscriber pair on `engine`; returns the
/// subscriber's canvas (the leader's result is checked by the caller
/// via the join handle outcome).
fn run_gated_pair(
    engine: &Arc<QueryEngine>,
    leader_q: Query,
    follower_q: Query,
    gate: &Arc<Gate>,
    entered: &Arc<AtomicBool>,
) -> (std::thread::Result<Arc<Canvas>>, Arc<Canvas>) {
    let leader = {
        let engine = Arc::clone(engine);
        let vp = vp();
        std::thread::spawn(move || Arc::clone(engine.execute(&leader_q, vp).unwrap().canvas()))
    };
    // The leader raises `entered` from inside the shared subplan's V
    // pass — at that point its in-flight entry is registered and stays
    // pending until the gate opens.
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    let follower = {
        let engine = Arc::clone(engine);
        let vp = vp();
        std::thread::spawn(move || Arc::clone(engine.execute(&follower_q, vp).unwrap().canvas()))
    };
    // Give the follower ample time to reach the subplan table and
    // subscribe (it does no rendering first — prepare + probe only).
    std::thread::sleep(std::time::Duration::from_millis(200));
    gate.open();
    let leader_result = leader.join();
    let follower_canvas = follower.join().expect("subscriber must never panic");
    (leader_result, follower_canvas)
}

#[test]
fn concurrent_query_subscribes_to_inflight_subplan() {
    let data = data();
    let gate = Gate::new();
    let entered = Arc::new(AtomicBool::new(false));
    let plan_a = gated_query(&data, "keep-a", &gate, &entered, None);
    let plan_b = gated_query(&data, "keep-b", &gate, &entered, None);

    // Baseline: one gated query alone (sharing off) — how much
    // geometry a single evaluation rasterizes.
    let gate_open = Gate::new();
    gate_open.open();
    let solo = QueryEngine::with_config(EngineConfig {
        share_subplans: false,
        ..config(256 << 20)
    });
    solo.execute(
        &gated_query(&data, "keep-a", &gate_open, &entered, None),
        vp(),
    )
    .unwrap();
    let solo_prims = solo.shared().stats().primitives;
    entered.store(false, Ordering::SeqCst);

    let engine = Arc::new(QueryEngine::with_config(config(256 << 20)));
    let (leader_result, follower_canvas) =
        run_gated_pair(&engine, plan_a.clone(), plan_b.clone(), &gate, &entered);
    let leader_canvas = leader_result.expect("leader succeeds");

    // Both roots differ, but the gated interior was rendered ONCE:
    // the pair rasterized exactly what one query alone rasterizes.
    assert_eq!(
        engine.shared().stats().primitives,
        solo_prims,
        "subscription must avoid re-rendering the shared subplan"
    );
    let m = engine.metrics();
    assert!(m.subplan_hits >= 1, "{m:?}");
    assert_eq!(m.shared_renders_avoided, 1, "{m:?}");
    assert_eq!(m.subplan_fallbacks, 0, "{m:?}");

    assert_canvas_eq(&leader_canvas, &cpu_reference(&plan_a, vp()), "leader");
    assert_canvas_eq(&follower_canvas, &cpu_reference(&plan_b, vp()), "follower");
}

#[test]
fn tiny_budget_subscription_survives_missing_cache_entry() {
    // The eviction blind spot: with a zero cache budget the published
    // intermediate is never admitted (the limit case of "evicted the
    // moment it was inserted, mid-subscription"). The subscriber must
    // still be served — the in-flight slot hands over the canvas
    // directly — and a later resubmission recomputes without panicking
    // or seeing anything stale.
    let data = data();
    let gate = Gate::new();
    let entered = Arc::new(AtomicBool::new(false));
    let plan_a = gated_query(&data, "keep-a", &gate, &entered, None);
    let plan_b = gated_query(&data, "keep-b", &gate, &entered, None);

    let engine = Arc::new(QueryEngine::with_config(config(0)));
    let (leader_result, follower_canvas) =
        run_gated_pair(&engine, plan_a.clone(), plan_b.clone(), &gate, &entered);
    let leader_canvas = leader_result.expect("leader succeeds");

    let m = engine.metrics();
    assert_eq!(m.shared_renders_avoided, 1, "{m:?}");
    let cs = engine.cache_stats();
    assert_eq!(cs.shared_entries, 0, "nothing admitted under budget 0");
    assert_canvas_eq(&leader_canvas, &cpu_reference(&plan_a, vp()), "leader");
    assert_canvas_eq(&follower_canvas, &cpu_reference(&plan_b, vp()), "follower");

    // Resubmit: no cache, no in-flight leader — a full private
    // recompute, still correct.
    let again = engine.execute(&plan_b, vp()).unwrap();
    assert_canvas_eq(again.canvas(), &cpu_reference(&plan_b, vp()), "recompute");
}

#[test]
fn subscriber_falls_back_when_leader_fails() {
    // The leader panics inside the shared subplan after the gate
    // opens; its dropped lease resolves the subscriber with the
    // fallback signal, and the subscriber renders privately (reusing
    // the C_P canvas the leader already published) — correct result,
    // no hang, no panic.
    let data = data();
    let gate = Gate::new();
    let entered = Arc::new(AtomicBool::new(false));
    let fuse = Arc::new(AtomicBool::new(false));
    let plan_a = gated_query(&data, "keep-a", &gate, &entered, Some(fuse.clone()));
    let plan_b = gated_query(&data, "keep-b", &gate, &entered, Some(fuse.clone()));

    let engine = Arc::new(QueryEngine::with_config(config(256 << 20)));
    let (leader_result, follower_canvas) =
        run_gated_pair(&engine, plan_a, plan_b.clone(), &gate, &entered);
    assert!(leader_result.is_err(), "leader's panic propagates to it");

    let m = engine.metrics();
    assert_eq!(m.subplan_fallbacks, 1, "{m:?}");
    assert_eq!(m.shared_renders_avoided, 0, "{m:?}");
    assert_eq!(m.failed, 1, "{m:?}");
    // The follower's private render still reused the C_P canvas the
    // leader published before panicking in the V pass.
    assert!(m.subplan_hits >= 1, "{m:?}");
    assert_canvas_eq(&follower_canvas, &cpu_reference(&plan_b, vp()), "fallback");
}

#[test]
fn mixed_class_eviction_under_tiny_budget_stays_correct() {
    // Roots and shared interiors churn one small budget together;
    // results must stay exact through every eviction pattern.
    let data = data();
    let qs = [
        district(),
        canvas_datagen::star_polygon(
            &BBox::new(Point::new(30.0, 5.0), Point::new(95.0, 60.0)),
            16,
            0.3,
            9,
        ),
    ];
    let one = cpu_reference(
        &Query::SelectPoints {
            data: data.clone(),
            q: qs[0].clone(),
        },
        vp(),
    )
    .size_bytes();
    let engine = QueryEngine::with_config(config(2 * one + one / 2));
    for round in 0..3 {
        for q in &qs {
            for query in [
                Query::SelectPoints {
                    data: data.clone(),
                    q: q.clone(),
                },
                heatmap_plan(&data, q),
            ] {
                let resp = engine.execute(&query, vp()).unwrap();
                assert_canvas_eq(
                    resp.canvas(),
                    &cpu_reference(&query, vp()),
                    &format!("round {round}"),
                );
            }
        }
    }
    let cs = engine.cache_stats();
    assert!(cs.evictions > 0, "tiny budget must evict: {cs:?}");
    assert!(cs.bytes <= 2 * one + one / 2, "budget respected: {cs:?}");
    let m = engine.metrics();
    assert!(m.subplan_published > 0, "{m:?}");
}
