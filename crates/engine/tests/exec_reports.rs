//! EXPLAIN ANALYZE + flight-recorder acceptance.
//!
//! Drives a mixed workload (plan-backed classes and promoted
//! procedures) with a tiny slow-query threshold so every submission is
//! tail-sampled, then checks the report contract end to end:
//!
//! * captures land in `QueryEngine::slow_queries()` with measured
//!   reports whose per-node exclusive walls sum to ≤ the root
//!   `execute` span (no double counting),
//! * every report row joins back to a plan-node fingerprint of the
//!   prepared form's EXPLAIN skeleton,
//! * a cache-hit replay reports `provenance: cache` with zero passes,
//! * the observability counters (`slow_captured`, `flight_*`) surface
//!   through the metrics registry.
//!
//! The flight recorder is process-wide state (per-thread rings +
//! global counters), so this lives in its own integration-test binary:
//! cargo gives it a dedicated process and no other test can race it.

use canvas_core::prelude::*;
use canvas_engine::{CaptureReason, EngineConfig, Query, QueryEngine, Served};
use canvas_geom::{BBox, Point};
use std::sync::Arc;
use std::time::Duration;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn vp() -> Viewport {
    Viewport::new(extent(), 64, 64)
}

fn workload() -> Vec<Query> {
    let points = Arc::new(PointBatch::from_points(canvas_datagen::taxi_pickups(
        &extent(),
        2_000,
        42,
    )));
    let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods(&extent(), 6, 11));
    let q = canvas_datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(80.0, 80.0)),
        16,
        0.4,
        7,
    );
    vec![
        Query::SelectPoints {
            data: points.clone(),
            q: q.clone(),
        },
        Query::SelectionHeatmap {
            data: points.clone(),
            q: q.clone(),
        },
        Query::AggregateByZone {
            data: points.clone(),
            zones,
        },
        Query::Knn {
            data: points.clone(),
            x: Point::new(50.0, 50.0),
            k: 8,
        },
        Query::Hull { data: points, q },
    ]
}

#[test]
fn tail_sampled_reports_join_plan_fingerprints_and_span_trees() {
    let engine = QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 2,
        max_queue: 64,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        // Every query is "slow": the capture path runs for the whole
        // mixed workload, not just a lucky straggler.
        slow_query_threshold: Duration::from_nanos(1),
    });
    let queries = workload();
    for q in &queries {
        let resp = engine.execute(q, vp()).expect("served");
        assert_eq!(resp.served, Served::Computed);
    }

    // Every submission crossed the threshold and was promoted.
    let slow = engine.slow_queries();
    assert_eq!(slow.len(), queries.len(), "one capture per submission");
    for entry in &slow {
        assert_eq!(entry.reason, CaptureReason::SlowService);
        assert!(entry.service_ns > 0);
        let r = &entry.report;
        assert!(r.measured, "captures carry measured reports");
        assert_eq!(r.provenance, "computed");
        assert!(r.spans_joined > 0, "flight rings held the span tree");
        assert!(
            r.execute_ns > 0 && r.execute_ns <= r.service_ns,
            "root span {} within service {}",
            r.execute_ns,
            r.service_ns
        );
        // Exclusive per-node walls never double-count: their sum stays
        // within the root execute span.
        let node_sum: u64 = r.nodes.iter().map(|n| n.wall_ns).sum();
        assert!(
            node_sum <= r.execute_ns,
            "node walls {}ns exceed execute {}ns in {}",
            node_sum,
            r.execute_ns,
            entry.label
        );
        assert!(r.nodes.iter().any(|n| n.wall_ns > 0), "work was attributed");
        // Every row joins a plan-node fingerprint of the EXPLAIN
        // skeleton (row 0 is the whole-query cache identity).
        assert!(!r.nodes.is_empty());
        for n in &r.nodes {
            assert!(
                !n.fingerprint.is_empty(),
                "row {} lost its join key",
                n.node
            );
        }
        assert_eq!(r.nodes[0].fingerprint, r.fingerprint);
    }

    // The measured rows are the prepared form's EXPLAIN rows: same
    // pre-order ids, same subtree fingerprints, in order.
    let plan_backed = &queries[0];
    let explain = plan_backed.prepare().explain();
    assert!(!explain.measured);
    assert!(explain.nodes.len() > 1, "plan-backed EXPLAIN has a tree");
    let captured = slow
        .iter()
        .find(|e| e.label == "select_points")
        .expect("plan-backed capture");
    assert_eq!(captured.report.nodes.len(), explain.nodes.len());
    for (measured, plain) in captured.report.nodes.iter().zip(&explain.nodes) {
        assert_eq!(measured.node, plain.node);
        assert_eq!(measured.fingerprint, plain.fingerprint);
        assert_eq!(measured.label, plain.label);
    }

    // A resubmission is a cache hit; its on-demand report says so on
    // every row, with zero passes (nothing re-ran).
    let replay = engine.execute(plan_backed, vp()).expect("served");
    assert_eq!(replay.served, Served::CacheHit);
    let report = replay.report();
    assert!(report.measured);
    assert_eq!(report.provenance, "cache");
    for n in &report.nodes {
        assert_eq!(n.provenance, "cache");
        assert_eq!(n.passes, 0);
        assert_eq!(n.wall_ns, 0);
    }
    // Renderings agree between the two surfaces.
    assert!(report.to_json().contains("\"provenance\": \"cache\""));
    assert!(report.to_text().contains("cache"));

    // Recorder health lands in the registry snapshot.
    let json = engine.metrics_json();
    for key in [
        "\"slow_captured\"",
        "\"flight_recycled\"",
        "\"flight_dropped\"",
        "\"obs_dropped_spans\"",
    ] {
        assert!(json.contains(key), "{key} missing from metrics JSON");
    }
    // The replay crossed the (1ns) threshold too, so it was captured
    // as well — with its cache-hit provenance intact.
    let after = engine.slow_queries();
    assert_eq!(after.len(), queries.len() + 1);
    let hit = after.last().unwrap();
    assert_eq!(hit.report.provenance, "cache");
    assert!(json.contains(&format!("\"slow_captured\": {}", after.len())));
}
