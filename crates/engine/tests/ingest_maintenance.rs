//! Streaming-ingest maintenance through the serving engine.
//!
//! The contract under test: a [`Query::LiveHeatmap`] response is
//! always the canvas of **exactly** the generation its fingerprint
//! claims — never stale bits from before an append — whether it was
//! computed, patched incrementally from a cached predecessor, served
//! from the cache, or coalesced; and the incremental path is an
//! optimization only (bit-identical to a full render, metered by
//! `incremental_refreshes` / `dirty_tiles_redrawn` /
//! `full_renders_avoided`). Edge cases ride along: out-of-viewport
//! appends are pure re-stamps, empty appends are no-op generation
//! bumps, and an evicted predecessor falls back to a full render
//! without hanging or inflating `full_renders_avoided`.

use canvas_core::prelude::*;
use canvas_engine::{EngineConfig, Query, QueryEngine, Served};
use canvas_geom::{BBox, Point};
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn vp() -> Viewport {
    Viewport::new(extent(), 128, 128)
}

fn engine(budget: usize) -> QueryEngine {
    QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 4,
        max_queue: 64,
        cache_budget_bytes: budget,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    })
}

fn assert_canvas_eq(got: &Canvas, want: &Canvas, ctx: &str) {
    assert_eq!(got.texels(), want.texels(), "{ctx}: texel planes differ");
    assert_eq!(got.cover(), want.cover(), "{ctx}: cover planes differ");
    assert_eq!(
        got.boundary(),
        want.boundary(),
        "{ctx}: boundary indexes differ"
    );
}

/// The from-scratch reference for one snapshot on a sequential device.
fn reference(snapshot: &TableSnapshot) -> Canvas {
    let mut dev = Device::cpu();
    render_live_heatmap(&mut dev, vp(), snapshot.batch(), None)
}

#[test]
fn refresh_patches_predecessor_and_retires_its_entry() {
    let feed = canvas_datagen::trip_feed(&extent(), 2_000, 4, 42);
    let table = VersionedTable::new("taxi", extent(), feed.batch(0));
    let engine = engine(64 << 20);

    let snap0 = table.snapshot();
    let first = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: snap0.clone(),
            },
            vp(),
        )
        .unwrap();
    assert_eq!(first.served, Served::Computed);
    assert_canvas_eq(first.canvas(), &reference(&snap0), "generation 0");
    let entries_before = engine.cache_stats().entries;

    engine.ingest_append(&table, &feed.batch(1));
    let snap1 = table.snapshot();
    assert_eq!(snap1.generation(), 1);

    let second = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: snap1.clone(),
            },
            vp(),
        )
        .unwrap();
    // Served by patching generation 0's cached canvas — and still
    // bit-identical to a from-scratch render of generation 1.
    assert_eq!(second.served, Served::Incremental);
    assert_canvas_eq(second.canvas(), &reference(&snap1), "generation 1");
    assert_ne!(first.fingerprint, second.fingerprint);
    assert_eq!(second.report().provenance, "incremental");

    let m = engine.metrics();
    assert_eq!(m.ingest_appends, 1);
    assert_eq!(m.incremental_refreshes, 1);
    assert_eq!(m.full_renders_avoided, 1);
    assert!(m.dirty_tiles_redrawn >= 1, "{m:?}");

    // The predecessor's entry was retired when its successor published:
    // net cache entries are unchanged (one in, one out)…
    assert_eq!(engine.cache_stats().entries, entries_before);
    // …so re-submitting the *old* snapshot recomputes rather than
    // hitting a stale entry, while the new generation hits and returns
    // the identical Arc.
    let old_again = engine
        .execute(&Query::LiveHeatmap { snapshot: snap0 }, vp())
        .unwrap();
    assert_eq!(old_again.served, Served::Computed);
    let new_again = engine
        .execute(&Query::LiveHeatmap { snapshot: snap1 }, vp())
        .unwrap();
    assert_eq!(new_again.served, Served::CacheHit);
    assert!(Arc::ptr_eq(second.canvas(), new_again.canvas()));
}

#[test]
fn out_of_viewport_append_is_pure_restamp() {
    // Viewport over the lower-left quadrant; the append lands entirely
    // in the upper-right — zero dirty tiles, but the generation (and
    // therefore the fingerprint) must still advance.
    let small_vp = Viewport::new(
        BBox::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0)),
        128,
        128,
    );
    let base = PointBatch::from_points(vec![Point::new(10.0, 10.0), Point::new(30.0, 20.0)]);
    let table = VersionedTable::new("corner", extent(), base);
    let engine = engine(64 << 20);

    let first = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            small_vp,
        )
        .unwrap();
    assert_eq!(first.served, Served::Computed);

    engine.ingest_append(
        &table,
        &PointBatch::from_points(vec![Point::new(80.0, 80.0), Point::new(95.0, 60.0)]),
    );
    let resp = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            small_vp,
        )
        .unwrap();
    assert_eq!(resp.served, Served::Incremental);
    assert_ne!(first.fingerprint, resp.fingerprint, "append re-stamps");
    let m = engine.metrics();
    assert_eq!(m.incremental_refreshes, 1);
    assert_eq!(m.dirty_tiles_redrawn, 0, "nothing in view was touched");
    // Same bits as the predecessor (a fresh allocation under the new
    // key, not the same Arc).
    assert_canvas_eq(resp.canvas(), first.canvas(), "pure re-stamp");
    assert!(!Arc::ptr_eq(first.canvas(), resp.canvas()));
}

#[test]
fn empty_append_is_noop_generation_bump() {
    let base = PointBatch::from_points(vec![Point::new(10.0, 10.0), Point::new(60.0, 70.0)]);
    let table = VersionedTable::new("quiet", extent(), base);
    let engine = engine(64 << 20);

    let first = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            vp(),
        )
        .unwrap();
    let out = engine.ingest_append(&table, &PointBatch::default());
    assert_eq!(out.appended, 0);
    assert_eq!(out.generation, 1);

    let resp = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            vp(),
        )
        .unwrap();
    assert_eq!(resp.served, Served::Incremental);
    assert_ne!(first.fingerprint, resp.fingerprint, "no-op still re-stamps");
    assert_eq!(engine.metrics().dirty_tiles_redrawn, 0);
    assert_canvas_eq(resp.canvas(), first.canvas(), "no-op bump");
}

#[test]
fn evicted_predecessor_falls_back_to_full_render() {
    let feed = canvas_datagen::trip_feed(&extent(), 1_000, 4, 7);
    let table = VersionedTable::new("evicted", extent(), feed.batch(0));
    // Budget 0 disables the cache: the generation-0 canvas is never
    // retained, so the refresh probe must miss and fall back.
    let engine = engine(0);

    let first = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            vp(),
        )
        .unwrap();
    assert_eq!(first.served, Served::Computed);

    engine.ingest_append(&table, &feed.batch(1));
    let snap1 = table.snapshot();
    let resp = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: snap1.clone(),
            },
            vp(),
        )
        .unwrap();
    // No hang, no stale serve: a full render under the new fingerprint.
    assert_eq!(resp.served, Served::Computed);
    assert_canvas_eq(resp.canvas(), &reference(&snap1), "fallback render");
    let m = engine.metrics();
    assert_eq!(m.incremental_refreshes, 0);
    assert_eq!(
        m.full_renders_avoided, 0,
        "fallback must not count as avoided"
    );
    assert_eq!(m.dirty_tiles_redrawn, 0);
}

/// Satellite 2's core claim: concurrent appenders racing mixed readers,
/// and **no query ever observes a canvas from a different generation
/// than its fingerprint claims**. References for every generation are
/// precomputed from the deterministic feed; each response is checked
/// bit-for-bit against the reference of the generation its snapshot
/// carried. Within one generation all responses must share one canvas
/// allocation (`ptr_eq`), since the key admits exactly one compute.
#[test]
fn concurrent_appends_never_serve_cross_generation_bits() {
    const APPENDS: usize = 5;
    let feed = canvas_datagen::trip_feed(&extent(), 2_400, (APPENDS + 1) as u16, 42);
    let table = Arc::new(VersionedTable::new("race", extent(), feed.batch(0)));

    // From-scratch reference per generation (the feed is replayable, so
    // generation g's contents are known up front).
    let mut cumulative = feed.batch(0);
    let mut refs: Vec<Canvas> = Vec::new();
    {
        let mut dev = Device::cpu();
        refs.push(render_live_heatmap(&mut dev, vp(), &cumulative, None));
        for g in 1..=APPENDS {
            let b = feed.batch(g);
            let from = cumulative.len() as u32;
            cumulative.points.extend_from_slice(&b.points);
            cumulative.weights.extend_from_slice(&b.weights);
            cumulative.ids.extend((0..b.len() as u32).map(|i| from + i));
            refs.push(render_live_heatmap(&mut dev, vp(), &cumulative, None));
        }
    }
    let refs = Arc::new(refs);

    let engine = Arc::new(engine(128 << 20));
    let barrier = Arc::new(std::sync::Barrier::new(4));

    // One appender walks the feed; three readers hammer snapshots.
    let appender = {
        let engine = Arc::clone(&engine);
        let table = Arc::clone(&table);
        let feed_batches: Vec<PointBatch> = (1..=APPENDS).map(|g| feed.batch(g)).collect();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for b in &feed_batches {
                engine.ingest_append(&table, b);
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
        })
    };
    let mut readers = Vec::new();
    for r in 0..3 {
        let engine = Arc::clone(&engine);
        let table = Arc::clone(&table);
        let refs = Arc::clone(&refs);
        let barrier = Arc::clone(&barrier);
        readers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut seen: Vec<(u64, Arc<Canvas>)> = Vec::new();
            for i in 0..30 {
                let snapshot = table.snapshot();
                let gen = snapshot.generation();
                let prepared_fp = Query::LiveHeatmap {
                    snapshot: snapshot.clone(),
                }
                .prepare()
                .fingerprint;
                let resp = engine
                    .execute(&Query::LiveHeatmap { snapshot }, vp())
                    .unwrap();
                // The response's identity is the generation we asked for…
                assert_eq!(resp.fingerprint, prepared_fp, "reader {r}, iter {i}");
                // …and its bits are that exact generation's render.
                assert_canvas_eq(
                    resp.canvas(),
                    &refs[gen as usize],
                    &format!("reader {r}, iter {i}, gen {gen}, served {:?}", resp.served),
                );
                seen.push((gen, Arc::clone(resp.canvas())));
            }
            seen
        }));
    }
    appender.join().unwrap();
    let all: Vec<(u64, Arc<Canvas>)> = readers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    // One canvas allocation per generation across every reader: cache
    // hits and coalesced followers share the leader's Arc.
    for g in 0..=APPENDS as u64 {
        let of_gen: Vec<&Arc<Canvas>> = all
            .iter()
            .filter(|(gg, _)| *gg == g)
            .map(|(_, c)| c)
            .collect();
        for c in of_gen.iter().skip(1) {
            assert!(
                Arc::ptr_eq(c, of_gen[0]),
                "generation {g} served two allocations"
            );
        }
    }

    // Close the race deterministically: the final generation's canvas
    // is now cached, so one more append + query must patch it.
    let final_gen_before = table.snapshot();
    let _ = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: final_gen_before,
            },
            vp(),
        )
        .unwrap();
    engine.ingest_append(
        &table,
        &PointBatch::from_points(vec![Point::new(50.0, 50.0)]),
    );
    let resp = engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            vp(),
        )
        .unwrap();
    assert_eq!(resp.served, Served::Incremental);

    let m = engine.metrics();
    assert_eq!(m.ingest_appends, (APPENDS + 1) as u64);
    assert!(m.incremental_refreshes >= 1, "{m:?}");
    assert_eq!(
        m.computed + m.cache_hits + m.coalesced + m.incremental_refreshes,
        m.submitted,
        "every submission accounted for: {m:?}"
    );
}
