//! Concurrent-engine stress & equivalence harness.
//!
//! The serving engine's whole correctness claim is that concurrency,
//! caching, and deduplication are *invisible* in results: every
//! response — computed, cache hit, or coalesced — must be bit-identical
//! to evaluating the same query single-threaded on `Device::cpu`.
//! These tests drive N client threads of randomized mixed queries
//! against one engine and assert exactly that, plus the cache's
//! correctness properties (hits return the identical canvas; a tiny
//! budget evicts but never corrupts).

use canvas_core::prelude::*;
use canvas_engine::{EngineConfig, Query, QueryEngine, QueryResult, Served};
use canvas_geom::{BBox, Point};
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn viewports() -> Vec<Viewport> {
    // Two zoom levels and a pan — the interactive reuse pattern.
    vec![
        Viewport::new(extent(), 64, 64),
        Viewport::new(
            BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            64,
            64,
        ),
        Viewport::new(extent(), 96, 96),
    ]
}

/// The mixed workload: every engine query kind over shared datasets.
fn workload() -> (Vec<Query>, Vec<Viewport>) {
    let points = Arc::new(PointBatch::from_points(canvas_datagen::taxi_pickups(
        &extent(),
        3_000,
        42,
    )));
    let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods(&extent(), 8, 11));
    let q1 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(80.0, 80.0)),
        24,
        0.4,
        7,
    );
    let q2 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(40.0, 10.0), Point::new(95.0, 60.0)),
        16,
        0.3,
        9,
    );
    let queries = vec![
        Query::SelectPoints {
            data: points.clone(),
            q: q1.clone(),
        },
        Query::SelectPoints {
            data: points.clone(),
            q: q2.clone(),
        },
        Query::SelectionHeatmap {
            data: points.clone(),
            q: q1.clone(),
        },
        Query::PolygonDensity {
            table: zones.clone(),
            q: q1.clone(),
        },
        Query::AggregateByZone {
            data: points.clone(),
            zones: zones.clone(),
        },
        Query::Plan(Expr::blend(
            BlendFn::PointOverArea,
            Expr::points(points.clone()),
            Expr::query_polygon(q2, 2),
        )),
        // A versioned table at its base generation: the streaming query
        // class must behave like any other under concurrency (no
        // predecessor exists, so nothing here serves incrementally).
        Query::LiveHeatmap {
            snapshot: VersionedTable::new(
                "stress-live",
                extent(),
                PointBatch::from_points(canvas_datagen::taxi_pickups(&extent(), 1_500, 77)),
            )
            .snapshot(),
        },
    ];
    (queries, viewports())
}

fn assert_canvas_eq(got: &Canvas, want: &Canvas, ctx: &str) {
    assert_eq!(got.texels(), want.texels(), "{ctx}: texel planes differ");
    assert_eq!(got.cover(), want.cover(), "{ctx}: cover planes differ");
    assert_eq!(
        got.boundary().points(),
        want.boundary().points(),
        "{ctx}: point entries differ"
    );
    assert_eq!(
        got.boundary().areas(),
        want.boundary().areas(),
        "{ctx}: area entries differ"
    );
    assert_eq!(
        got.boundary().lines(),
        want.boundary().lines(),
        "{ctx}: line entries differ"
    );
}

#[test]
fn concurrent_randomized_queries_match_sequential_cpu() {
    let (queries, vps) = workload();

    // Single-threaded reference for every (query, viewport) pair.
    let mut reference: Vec<Vec<QueryResult>> = Vec::new();
    for q in &queries {
        let mut per_vp = Vec::new();
        for vp in &vps {
            let mut dev = Device::cpu();
            per_vp.push(q.prepare().execute(&mut dev, *vp));
        }
        reference.push(per_vp);
    }
    let reference = Arc::new(reference);

    let engine = Arc::new(QueryEngine::with_config(EngineConfig {
        threads: 3,
        max_concurrent: 4,
        max_queue: 64,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    }));

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 24;
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let engine = Arc::clone(&engine);
        let queries = queries.clone();
        let vps = vps.clone();
        let reference = Arc::clone(&reference);
        handles.push(std::thread::spawn(move || {
            // Deterministic xorshift walk, distinct per client.
            let mut state = 0x9E3779B9u64.wrapping_mul(client as u64 + 1) | 1;
            for _ in 0..PER_CLIENT {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let qi = (state >> 8) as usize % queries.len();
                let vi = (state >> 32) as usize % vps.len();
                let resp = engine
                    .execute(&queries[qi], vps[vi])
                    .expect("no shedding at this load");
                assert_canvas_eq(
                    resp.canvas(),
                    reference[qi][vi].canvas(),
                    &format!(
                        "client {client}, query {qi}, vp {vi}, served {:?}",
                        resp.served
                    ),
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let m = engine.metrics();
    assert_eq!(m.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(
        m.computed + m.cache_hits + m.coalesced,
        m.submitted,
        "every submission was served"
    );
    // 96 submissions over 21 distinct (query, viewport) keys: the
    // cache must have carried most of the load.
    assert!(
        m.cache_hits + m.coalesced >= m.submitted / 2,
        "reuse too low: {m:?}"
    );
    assert!(m.computed >= 1);
    let cs = engine.cache_stats();
    assert!(cs.hits >= m.cache_hits); // engine hits all came from the cache
    assert!(cs.bytes <= 64 << 20);
    // Shared-device accounting saw every computed evaluation.
    assert!(engine.shared().stats().passes > 0);
}

#[test]
fn cache_hit_returns_identical_canvas() {
    let (queries, vps) = workload();
    let engine = QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 2,
        max_queue: 8,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    let first = engine.execute(&queries[0], vps[0]).unwrap();
    assert_eq!(first.served, Served::Computed);
    let second = engine.execute(&queries[0], vps[0]).unwrap();
    assert_eq!(second.served, Served::CacheHit);
    // The hit is the *same* shared canvas — bit-identity by
    // construction — and matches a fresh sequential evaluation.
    assert!(Arc::ptr_eq(first.canvas(), second.canvas()));
    assert!(first.result.ptr_eq(&second.result));
    let mut dev = Device::cpu();
    let want = queries[0].prepare().execute(&mut dev, vps[0]);
    assert_canvas_eq(second.canvas(), want.canvas(), "cache hit");
    // Same query, different viewport: a different cache entry.
    let other = engine.execute(&queries[0], vps[1]).unwrap();
    assert_eq!(other.served, Served::Computed);
    assert_eq!(first.fingerprint, other.fingerprint);
}

#[test]
fn eviction_under_tiny_budget_stays_correct() {
    let (queries, vps) = workload();
    // Budget sized to roughly one 64×64 canvas: inserting a second
    // entry must evict the first, and everything stays correct.
    let mut dev = Device::cpu();
    let one = queries[0].prepare().execute(&mut dev, vps[0]).size_bytes();
    let engine = QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 2,
        max_queue: 8,
        cache_budget_bytes: one + one / 2,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    for round in 0..3 {
        for (qi, q) in queries.iter().take(3).enumerate() {
            let resp = engine.execute(q, vps[0]).unwrap();
            let mut dev = Device::cpu();
            let want = q.prepare().execute(&mut dev, vps[0]);
            assert_canvas_eq(
                resp.canvas(),
                want.canvas(),
                &format!("round {round}, query {qi}"),
            );
        }
    }
    let cs = engine.cache_stats();
    assert!(cs.evictions > 0, "tiny budget must evict: {cs:?}");
    assert!(
        cs.bytes <= one + one / 2,
        "budget respected: {} > {}",
        cs.bytes,
        one + one / 2
    );
    // Oversized canvases (96×96 > budget) are rejected, not admitted.
    let resp = engine.execute(&queries[0], vps[2]).unwrap();
    assert_eq!(resp.served, Served::Computed);
    assert!(engine.cache_stats().rejected_oversize > 0);
}

#[test]
fn identical_simultaneous_submissions_deduplicate() {
    let (queries, vps) = workload();
    let engine = Arc::new(QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 1,
        max_queue: 16,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    }));
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        let q = queries[2].clone();
        let vp = vps[0];
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            Arc::clone(engine.execute(&q, vp).unwrap().canvas())
        }));
    }
    let canvases: Vec<Arc<Canvas>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // All four responses share one canvas allocation: evaluated once,
    // served four times (who coalesced vs hit the cache is a race; the
    // compute count is not).
    for c in &canvases[1..] {
        assert!(Arc::ptr_eq(c, &canvases[0]));
    }
    let m = engine.metrics();
    assert_eq!(m.computed, 1, "deduplication failed: {m:?}");
    assert_eq!(m.cache_hits + m.coalesced, 3);
}

#[test]
fn fair_share_tickets_reach_the_pool_gate() {
    let (queries, vps) = workload();
    let engine = Arc::new(QueryEngine::with_config(EngineConfig {
        threads: 3,
        max_concurrent: 4,
        max_queue: 64,
        // No cache: force every submission through the executor so the
        // gate sees sustained multi-ticket traffic.
        cache_budget_bytes: 0,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    }));
    let mut handles = Vec::new();
    for client in 0..3usize {
        let engine = Arc::clone(&engine);
        let queries = queries.clone();
        let vp = vps[0];
        handles.push(std::thread::spawn(move || {
            for i in 0..4 {
                let q = &queries[(client + i) % queries.len()];
                let _ = engine.execute(q, vp).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = engine.scheduler_stats();
    assert!(s.grants > 0, "pooled passes reached the gate");
    assert!(
        s.per_ticket.len() >= 3,
        "per-query tickets registered: {s:?}"
    );
    let m = engine.metrics();
    // No cache ⇒ nothing is served from storage; only in-flight
    // coalescing (simultaneous identical submissions) may dedupe.
    assert_eq!(m.cache_hits, 0);
    assert_eq!(m.computed + m.coalesced, 12);
    assert!(m.computed >= 6, "most distinct submissions computed: {m:?}");
}
