//! Oracle equivalence harness for the promoted query classes.
//!
//! Every promoted descriptor (knn, voronoi, OD selection / flow matrix,
//! spatio-temporal window / time series, skyline, hull) is checked three
//! ways per generated input:
//!
//! 1. a **brute-force oracle** written straight from the paper's
//!    definition (no canvases, no rasterization),
//! 2. `Prepared::execute` on `Device::cpu`, `Device::cpu_parallel(2)`,
//!    and `Device::cpu_parallel(8)` — all three must agree bit-for-bit
//!    (parallelism is invisible in results),
//! 3. a `QueryEngine::execute` round trip — the computed response must
//!    equal the oracle and the immediate re-ask must be served from the
//!    cache as the *identical* shared allocation
//!    ([`QueryResult::ptr_eq`]), proving the promoted classes ride the
//!    same fingerprint-keyed cache as the canvas queries.

use canvas_core::prelude::*;
use canvas_core::queries::od::TripBatch;
use canvas_core::queries::skyline::dominates;
use canvas_core::queries::spatiotemporal::TemporalPoints;
use canvas_engine::{EngineConfig, Query, QueryEngine, QueryResult, Served};
use canvas_geom::hull::convex_hull;
use canvas_geom::{BBox, Point, Polygon};
use proptest::prelude::*;
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn vp() -> Viewport {
    Viewport::new(extent(), 64, 64)
}

fn assert_results_eq(a: &QueryResult, b: &QueryResult, ctx: &str) {
    match (a, b) {
        (QueryResult::Canvas(x), QueryResult::Canvas(y)) => {
            assert_eq!(x.texels(), y.texels(), "{ctx}: texel planes differ");
            assert_eq!(x.cover(), y.cover(), "{ctx}: cover planes differ");
            assert_eq!(
                x.boundary().points(),
                y.boundary().points(),
                "{ctx}: point entries differ"
            );
        }
        (QueryResult::Ids(x), QueryResult::Ids(y)) => assert_eq!(x, y, "{ctx}: id lists differ"),
        (QueryResult::FlowMatrix(x), QueryResult::FlowMatrix(y)) => {
            assert_eq!(x, y, "{ctx}: flow matrices differ")
        }
        (QueryResult::Series(x), QueryResult::Series(y)) => {
            assert_eq!(x, y, "{ctx}: series differ")
        }
        (QueryResult::Hull(x), QueryResult::Hull(y)) => assert_eq!(x, y, "{ctx}: hulls differ"),
        (a, b) => panic!("{ctx}: result kinds differ: {a:?} vs {b:?}"),
    }
}

/// Runs `q` on every CPU device flavor and through a fresh engine.
/// Asserts cross-device equality and cache-hit identity; returns the
/// single-threaded result for the caller's oracle comparison.
fn check_all_paths(q: &Query) -> QueryResult {
    let mut dev = Device::cpu();
    let base = q.prepare().execute(&mut dev, vp());
    for workers in [2usize, 8] {
        let mut dev = Device::cpu_parallel(workers);
        let alt = q.prepare().execute(&mut dev, vp());
        assert_results_eq(
            &base,
            &alt,
            &format!("{} on cpu_parallel({workers})", q.label()),
        );
    }

    let engine = QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 2,
        max_queue: 8,
        cache_budget_bytes: 32 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    let first = engine.execute(q, vp()).expect("served");
    assert_eq!(first.served, Served::Computed);
    assert_results_eq(&base, &first.result, &format!("{} via engine", q.label()));
    let second = engine.execute(q, vp()).expect("served");
    assert_eq!(second.served, Served::CacheHit, "{} must cache", q.label());
    assert!(
        first.result.ptr_eq(&second.result),
        "{}: cache hit must be the identical allocation",
        q.label()
    );
    base
}

fn arb_point() -> impl Strategy<Value = Point> {
    (0.5f64..99.5, 0.5f64..99.5).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(lo: usize, hi: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), lo..hi)
}

/// A random star polygon inside a random sub-box of the extent.
fn arb_polygon() -> impl Strategy<Value = Polygon> {
    (
        5.0f64..45.0,
        5.0f64..45.0,
        30.0f64..50.0,
        30.0f64..50.0,
        0u64..1_000_000,
    )
        .prop_map(|(x0, y0, w, h, seed)| {
            let bb = BBox::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
            canvas_datagen::star_polygon(&bb, 12, 0.35, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// knn: ids ordered by (distance, id), truncated to k — the paper's
    /// total-order-by-perturbation tie rule.
    #[test]
    fn knn_matches_oracle(pts in arb_points(20, 150), x in arb_point(), k in 1u32..20) {
        let q = Query::Knn {
            data: Arc::new(PointBatch::from_points(pts.clone())),
            x,
            k,
        };
        let got = check_all_paths(&q);
        let mut want: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.dist_sq(x), i as u32))
            .collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        want.truncate(k as usize);
        let want: Vec<u32> = want.into_iter().map(|(_, id)| id).collect();
        prop_assert_eq!(got.as_ids().unwrap().as_slice(), want.as_slice());
    }

    /// voronoi: every pixel center belongs to the site minimizing
    /// (d² as f32, id) — exactly the kernel's pointwise-min order, so
    /// the oracle replicates its arithmetic and the match is exact.
    #[test]
    fn voronoi_matches_oracle(sites in arb_points(1, 12)) {
        let q = Query::Voronoi { sites: Arc::new(sites.clone()) };
        let got = check_all_paths(&q);
        let canvas = got.as_canvas().unwrap();
        let v = canvas.viewport();
        for y in 0..v.height() {
            for x in 0..v.width() {
                let c = v.pixel_center(x, y);
                let want = sites
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (c.dist_sq(*s) as f32, i as u32))
                    .min_by(|a, b| a.partial_cmp(b).unwrap())
                    .map(|(_, i)| i)
                    .unwrap();
                prop_assert_eq!(
                    canvas.texel(x, y).get(2).unwrap().id, want,
                    "wrong owner at ({}, {})", x, y
                );
            }
        }
    }

    /// OD selection: ids i with origin ∈ q1 and destination ∈ q2.
    #[test]
    fn select_od_matches_oracle(
        origins in arb_points(60, 200), seed in 0u64..1_000_000,
        q1 in arb_polygon(), q2 in arb_polygon(),
    ) {
        let destinations: Vec<Point> = {
            // Derived destinations: deterministic scramble of origins.
            let mut s = seed | 1;
            origins.iter().map(|p| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let dx = ((s >> 8) % 100) as f64 - 50.0;
                let dy = ((s >> 40) % 100) as f64 - 50.0;
                Point::new((p.x + dx).clamp(0.5, 99.5), (p.y + dy).clamp(0.5, 99.5))
            }).collect()
        };
        let trips = TripBatch::new(origins.clone(), destinations.clone());
        let q = Query::SelectOd { trips: Arc::new(trips), q1: q1.clone(), q2: q2.clone() };
        let got = check_all_paths(&q);
        let want: Vec<u32> = (0..origins.len())
            .filter(|&i| q1.contains_closed(origins[i]) && q2.contains_closed(destinations[i]))
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(got.as_ids().unwrap().as_slice(), want.as_slice());
    }

    /// OD flow matrix: per zone pair, the count of trips with origin in
    /// the row zone and destination in the column zone.
    #[test]
    fn od_flow_matrix_matches_oracle(
        origins in arb_points(40, 120), dests in arb_points(40, 120), zone_seed in 0u64..1_000_000,
    ) {
        let n = origins.len().min(dests.len());
        let origins = &origins[..n];
        let dests = &dests[..n];
        let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods(&extent(), 4, zone_seed));
        let trips = TripBatch::new(origins.to_vec(), dests.to_vec());
        let q = Query::OdFlowMatrix {
            trips: Arc::new(trips),
            origin_zones: zones.clone(),
            dest_zones: zones.clone(),
        };
        let got = check_all_paths(&q);
        let want: Vec<Vec<u64>> = zones.iter().map(|oz| {
            zones.iter().map(|dz| {
                (0..n).filter(|&i| oz.contains_closed(origins[i]) && dz.contains_closed(dests[i]))
                    .count() as u64
            }).collect()
        }).collect();
        prop_assert_eq!(got.as_flow_matrix().unwrap().as_slice(), want.as_slice());
    }

    /// Spatio-temporal window + time series against the relational
    /// definition (`t ∈ [t0, t1)` conjoined with polygon containment).
    #[test]
    fn spatiotemporal_matches_oracle(
        pts in arb_points(60, 200), tseed in 0u64..1_000_000,
        q in arb_polygon(), t0 in 0u32..120, dt in 1u32..120, windows in 1u32..10,
    ) {
        let timestamps: Vec<u32> = {
            let mut s = tseed | 1;
            pts.iter().map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s % 240) as u32
            }).collect()
        };
        let t1 = t0 + dt;
        let data = Arc::new(TemporalPoints::new(pts.clone(), timestamps.clone()));
        let got = check_all_paths(&Query::SpatioTemporalWindow {
            data: data.clone(), q: q.clone(), t0, t1,
        });
        let want: Vec<u32> = (0..pts.len())
            .filter(|&i| (t0..t1).contains(&timestamps[i]) && q.contains_closed(pts[i]))
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(got.as_ids().unwrap().as_slice(), want.as_slice());

        let got = check_all_paths(&Query::RegionTimeSeries {
            data, q: q.clone(), t0, t1, windows,
        });
        let mut series = vec![0u64; windows as usize];
        let last = series.len() - 1;
        for &i in &want {
            let t = timestamps[i as usize];
            let w = ((t - t0) as u64 * windows as u64 / dt as u64) as usize;
            series[w.min(last)] += 1;
        }
        prop_assert_eq!(got.as_series().unwrap().as_slice(), series.as_slice());
    }

    /// Skyline: non-dominated members of the constrained selection,
    /// using the paper's spatial-dominance relation directly.
    #[test]
    fn skyline_matches_oracle(
        pts in arb_points(40, 150), sites in arb_points(1, 5), constraint in arb_polygon(),
    ) {
        let q = Query::Skyline {
            data: Arc::new(PointBatch::from_points(pts.clone())),
            constraint: constraint.clone(),
            sites: Arc::new(sites.clone()),
        };
        let got = check_all_paths(&q);
        let selected: Vec<u32> = (0..pts.len())
            .filter(|&i| constraint.contains_closed(pts[i]))
            .map(|i| i as u32)
            .collect();
        let mut want: Vec<u32> = selected
            .iter()
            .copied()
            .filter(|&i| {
                !selected.iter().any(|&j| {
                    j != i && dominates(pts[j as usize], pts[i as usize], &sites)
                })
            })
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got.as_ids().unwrap().as_slice(), want.as_slice());
    }

    /// Hull: Andrew's monotone chain over the constrained selection —
    /// a canonical ring, so equality is exact regardless of the order
    /// the canvas yielded the selected points in.
    #[test]
    fn hull_matches_oracle(pts in arb_points(10, 150), q in arb_polygon()) {
        let query = Query::Hull {
            data: Arc::new(PointBatch::from_points(pts.clone())),
            q: q.clone(),
        };
        let got = check_all_paths(&query);
        let selected: Vec<Point> = pts
            .iter()
            .copied()
            .filter(|p| q.contains_closed(*p))
            .collect();
        let want = convex_hull(&selected);
        prop_assert_eq!(got.as_hull().unwrap().as_slice(), want.as_slice());
    }
}

/// Distinct descriptors must not collide in the cache: one engine serves
/// all six classes over shared datasets and every response stays
/// attributable to its own query (fingerprint domains are disjoint).
#[test]
fn promoted_classes_share_one_engine_without_collisions() {
    let pts = canvas_datagen::taxi_pickups(&extent(), 800, 21);
    let data = Arc::new(PointBatch::from_points(pts.clone()));
    let trips = canvas_datagen::generate_trips(&extent(), 500, 24, 33);
    let temporal = Arc::new(TemporalPoints::new(
        trips.pickups.clone(),
        trips.time_slots.iter().map(|&t| t as u32).collect(),
    ));
    let od = Arc::new(trips.od_batch());
    let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods(&extent(), 4, 11));
    let sites = Arc::new(canvas_datagen::jittered_sites(&extent(), 6, 5));
    let q1 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(10.0, 10.0), Point::new(60.0, 60.0)),
        16,
        0.3,
        7,
    );
    let q2 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(40.0, 40.0), Point::new(90.0, 90.0)),
        16,
        0.3,
        9,
    );
    let queries = vec![
        Query::Knn {
            data: data.clone(),
            x: Point::new(50.0, 50.0),
            k: 12,
        },
        Query::Voronoi {
            sites: sites.clone(),
        },
        Query::SelectOd {
            trips: od.clone(),
            q1: q1.clone(),
            q2: q2.clone(),
        },
        Query::OdFlowMatrix {
            trips: od,
            origin_zones: zones.clone(),
            dest_zones: zones,
        },
        Query::SpatioTemporalWindow {
            data: temporal.clone(),
            q: q1.clone(),
            t0: 0,
            t1: 12,
        },
        Query::RegionTimeSeries {
            data: temporal,
            q: q1.clone(),
            t0: 0,
            t1: 24,
            windows: 6,
        },
        Query::Skyline {
            data: data.clone(),
            constraint: q1.clone(),
            sites,
        },
        Query::Hull { data, q: q2 },
    ];

    let engine = QueryEngine::with_config(EngineConfig {
        threads: 2,
        max_concurrent: 2,
        max_queue: 16,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    let mut firsts = Vec::new();
    for q in &queries {
        let resp = engine.execute(q, vp()).expect("served");
        assert_eq!(resp.served, Served::Computed, "{} computed", q.label());
        firsts.push(resp.result);
    }
    // Re-ask in reverse order: every class hits its own entry.
    for (q, first) in queries.iter().zip(&firsts).rev() {
        let resp = engine.execute(q, vp()).expect("served");
        assert_eq!(resp.served, Served::CacheHit, "{} hits", q.label());
        assert!(resp.result.ptr_eq(first), "{} identity", q.label());
    }
    let m = engine.metrics();
    assert_eq!(m.computed, queries.len() as u64);
    assert_eq!(m.cache_hits, queries.len() as u64);
    // Non-canvas payloads are byte-accounted in the cache.
    let cs = engine.cache_stats();
    assert!(cs.result_entries >= 5, "non-canvas entries tracked: {cs:?}");
    assert!(cs.result_bytes > 0);
    // Per-class latency histograms saw every submission.
    for q in &queries {
        let stats = engine.class_latency(q.label());
        assert!(
            stats.count() >= 2,
            "{}: class histogram missing submissions",
            q.label()
        );
    }
}
