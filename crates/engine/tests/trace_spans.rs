//! Span-tree well-formedness under concurrent serving.
//!
//! Drives mixed queries from several client threads with tracing
//! enabled and asserts the recorded spans form proper per-query trees:
//! every span is reachable from its query's `execute` root (work done
//! on pool worker threads included — the trace context rides the same
//! job hand-off as the fair-gate ticket), no pass-family span is
//! orphaned outside a query, child intervals nest inside their
//! parent's, and the station timings add up (`admission_wait` + `eval`
//! ≤ `execute` end-to-end).
//!
//! Tracing is a process-wide flag, so this lives in its own
//! integration-test binary: cargo gives it a dedicated process and no
//! other test can race the flag.

use canvas_core::prelude::*;
use canvas_engine::{EngineConfig, Query, QueryEngine};
use canvas_geom::{BBox, Point};
use canvas_obs as obs;
use std::collections::HashMap;
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn workload() -> (Vec<Query>, Vec<Viewport>) {
    let points = Arc::new(PointBatch::from_points(canvas_datagen::taxi_pickups(
        &extent(),
        3_000,
        42,
    )));
    let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods(&extent(), 8, 11));
    let q1 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(80.0, 80.0)),
        24,
        0.4,
        7,
    );
    let q2 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(40.0, 10.0), Point::new(95.0, 60.0)),
        16,
        0.3,
        9,
    );
    let queries = vec![
        Query::SelectPoints {
            data: points.clone(),
            q: q1.clone(),
        },
        Query::SelectionHeatmap {
            data: points.clone(),
            q: q2.clone(),
        },
        Query::PolygonDensity {
            table: zones.clone(),
            q: q1,
        },
        Query::AggregateByZone {
            data: points,
            zones,
        },
    ];
    let viewports = vec![
        Viewport::new(extent(), 64, 64),
        Viewport::new(
            BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            64,
            64,
        ),
    ];
    (queries, viewports)
}

#[test]
fn concurrent_serving_yields_well_formed_span_trees() {
    const CLIENTS: usize = 3;
    const STEPS: usize = 8;
    let engine = QueryEngine::with_config(EngineConfig {
        threads: 3,
        max_concurrent: CLIENTS,
        max_queue: 64,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    let (queries, viewports) = workload();

    obs::sink().clear();
    obs::set_tracing(true);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let engine = &engine;
            let queries = &queries;
            let viewports = &viewports;
            s.spawn(move || {
                for step in 0..STEPS {
                    let q = &queries[(client + step) % queries.len()];
                    let vp = viewports[(client + step / 2) % viewports.len()];
                    let resp = engine.execute(q, vp).expect("served");
                    std::hint::black_box(resp.canvas().non_null_count());
                }
            });
        }
    });
    obs::set_tracing(false);
    let records = obs::sink().take();
    assert_eq!(
        obs::sink().dropped(),
        0,
        "tiny workload must not drop spans"
    );
    assert!(!records.is_empty(), "tracing recorded nothing");

    let by_id: HashMap<u64, &obs::SpanRecord> = records.iter().map(|r| (r.id, r)).collect();

    // Every query that went through `execute` has a root span whose id
    // doubles as the query id.
    let roots: Vec<&obs::SpanRecord> = records.iter().filter(|r| r.name == "execute").collect();
    assert_eq!(
        roots.len(),
        CLIENTS * STEPS,
        "one execute root per submission"
    );
    for root in &roots {
        assert_eq!(root.query, root.id, "execute is its query's tree root");
    }

    for r in &records {
        // No span escapes query attribution: pass dispatch and worker
        // execution inherit the submitting query's context across the
        // thread hop.
        assert_ne!(
            r.query, 0,
            "orphan span {:?} recorded outside any query",
            r.name
        );
        if r.query == r.id {
            assert_eq!(r.name, "execute", "only execute roots a tree");
            continue;
        }
        // Walk to the root: every hop stays in the same query and every
        // child interval nests inside its parent's.
        let mut cur = r;
        let mut hops = 0;
        while cur.query != cur.id {
            let parent = by_id.get(&cur.parent).unwrap_or_else(|| {
                panic!(
                    "span {:?} (query {}) has dangling parent {}",
                    cur.name, cur.query, cur.parent
                )
            });
            assert_eq!(
                parent.query, cur.query,
                "span {:?} crosses from query {} into query {}",
                cur.name, cur.query, parent.query
            );
            assert!(
                parent.start_ns <= cur.start_ns
                    && cur.start_ns + cur.dur_ns <= parent.start_ns + parent.dur_ns,
                "span {:?} [{}, +{}] not nested in parent {:?} [{}, +{}]",
                cur.name,
                cur.start_ns,
                cur.dur_ns,
                parent.name,
                parent.start_ns,
                parent.dur_ns
            );
            cur = parent;
            hops += 1;
            assert!(hops < 64, "parent chain of {:?} does not terminate", r.name);
        }
    }

    // Station accounting: for each computed query, the time spent
    // waiting for admission plus the evaluation itself cannot exceed
    // the end-to-end service time.
    let mut evaluated = 0;
    for root in &roots {
        let kids: Vec<&obs::SpanRecord> = records
            .iter()
            .filter(|r| r.parent == root.id && r.id != root.id)
            .collect();
        let dur_of =
            |name: &str| -> Option<u64> { kids.iter().find(|r| r.name == name).map(|r| r.dur_ns) };
        if let Some(eval) = dur_of("eval") {
            evaluated += 1;
            let admission = dur_of("admission_wait").unwrap_or(0);
            assert!(
                admission + eval <= root.dur_ns,
                "admission {admission}ns + eval {eval}ns exceeds execute {}ns",
                root.dur_ns
            );
        }
    }
    assert!(evaluated > 0, "no query reached the eval station");

    // The computed trees must reach the executor and the raster
    // pipeline: pass dispatch and worker spans both present.
    for name in ["prepare", "cache_probe", "pass", "pass_worker"] {
        assert!(
            records.iter().any(|r| r.name == name),
            "no {name:?} span recorded across {} spans",
            records.len()
        );
    }
}
